//! The graph server: a catalog of resident [`CsrGraph`]s and a
//! work-stealing [`Executor`] with priority lanes behind a std-TCP accept
//! loop.
//!
//! # Architecture (full guide: `docs/ARCHITECTURE.md` §10)
//!
//! ```text
//! client conns ──► connection threads ──► executor (work-stealing core)
//!   (frames)       ┌──────────────────┐   ┌───────────────────────────┐
//!                  │ 1. ADMISSION     │   │ Interactive lane:         │
//!                  │  resolve graphs, │   │   point-query packets     │
//!                  │  per-graph quota │   │ Background lane:          │
//!                  │  + global budget │   │   full-vector gangs,      │
//!                  └──────────────────┘   │   tune runs               │
//!                        │                └───────────────────────────┘
//!                        └─► catalog (load/unload/list/manifest)
//! ```
//!
//! Every connection gets a plain OS thread (no async runtime — see
//! `vendor/README.md` for why). There is **no dispatcher thread and no
//! round barrier**: after admission, a connection thread submits its
//! queries straight to the shared [`Executor`] as typed work packets and
//! blocks on their replies. The request path:
//!
//! 1. **Admission** (connection thread): every query's graph is resolved
//!    and the request reserves against that graph's **pending quota**
//!    ([`ServerConfig::graph_pending_budget`]) *and* the server-wide budget
//!    ([`ServerConfig::pending_budget`]). A request that does not fit is
//!    answered with [`Response::Busy`] carrying the refusing
//!    [`BusyScope`] and a `retry_after_ms`
//!    drain estimate — nothing executes, nothing queues without bound, and
//!    one hot graph can no longer starve the others (its quota fills while
//!    every other graph keeps admitting).
//! 2. **Submission** (connection thread): the request becomes a
//!    [`RoundChain`] — one **Interactive** round of point-query packets,
//!    then one **Background** round of full-vector packets, opened by the
//!    last-out worker once the points drain (the bucket open-condition
//!    that replaced the old per-round dispatcher barrier). Tune requests
//!    ride the Background lane directly.
//! 3. **Execution** (executor workers): point packets run on per-worker
//!    per-graph [`QueryEngine`]s (inter-query
//!    parallelism, zero steady-state allocation) and *overtake* Background
//!    work — gang members steal Interactive packets at every engine
//!    barrier, so point latency stays bounded while a full-vector query or
//!    a tune storm owns the workers. Planning happens inside the packet:
//!    a pinned [`WireStrategy`] bypasses the planner; everything else
//!    executes under the graph's installed
//!    [`QueryPlan`](priograph_core::plan::QueryPlan) — heuristic-seeded at
//!    load, replaced when [`Request::TuneGraph`] runs the autotuner on the
//!    same executor.

use crate::batch::QueryEngine;
use crate::catalog::{Catalog, CatalogError, GraphEntry};
use crate::obs::{SeriesCache, Telemetry};
use crate::protocol::{
    legacy_error_payload, read_frame_or_idle, write_frame, BusyScope, ErrorKind, FrameIn, GraphId,
    Query, QueryOp, Request, Response, ServerStats, StatsV2, TuneOutcome, WireError, WirePlan,
    WireStrategy, PROTOCOL_VERSION,
};
use priograph_algorithms::{kcore, sssp, wbfs, UNREACHABLE};
use priograph_core::engine::RoundObserver;
use priograph_core::plan::AlgoFamily;
use priograph_core::schedule::Schedule;
use priograph_graph::{CsrGraph, LoadMode, MapOptions};
use priograph_parallel::shared::WorkerLocal;
use priograph_parallel::{
    ChainDriver, ExecCtx, Executor, Lane, Pool, Round, RoundChain, WorkPacket,
};
use priograph_telemetry::QuerySpan;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{mpsc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`serve`]d server is configured.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads in the serving pool.
    pub threads: usize,
    /// Schedule used when a query *pins* a strategy but defers Δ — and the
    /// base the planner never consults otherwise (unpinned queries get the
    /// per-graph plan instead).
    pub default_schedule: Schedule,
    /// Maximum queries grouped into one dispatcher round.
    pub max_batch: usize,
    /// Server-wide bound on queries admitted but not yet answered — the
    /// last-resort cap once every graph's quota is saturated. A request
    /// whose query count does not fit is refused with [`Response::Busy`]
    /// (`scope = Global`); a single request larger than the whole budget
    /// can never be admitted (the `Busy` reply tells the client to split
    /// it).
    pub pending_budget: usize,
    /// Per-graph bound on admitted-but-unanswered queries. One hot graph
    /// fills its own quota and gets `Busy { scope: Graph(id) }` while every
    /// other resident graph keeps admitting — the fairness half of
    /// backpressure.
    pub graph_pending_budget: usize,
    /// Manifest file for catalog persistence: restored at boot, rewritten
    /// on every load/unload/plan install. `None` disables persistence.
    pub manifest: Option<std::path::PathBuf>,
    /// Open wire-loaded snapshots with `MAP_POPULATE` + sequential advice
    /// (`--mmap-populate`): pre-faults the file at map time so cold-cache
    /// first queries do not stall on page-in.
    pub mmap_populate: bool,
    /// Hard cap on concurrently served connections. A connection accepted
    /// over the cap gets one typed `overloaded` error frame and is closed —
    /// a refusal the client can act on instead of an unbounded
    /// handler-thread spawn (`docs/PROTOCOL.md` §6.1).
    pub max_connections: usize,
    /// Socket read/write timeout per connection, in milliseconds. A read
    /// timeout on an *idle* connection (no frame started) keeps it open; a
    /// timeout *inside* a frame — a slow-loris peer trickling bytes, or a
    /// stalled mid-payload read/write — drops the connection so it cannot
    /// wedge its handler thread.
    pub io_timeout_ms: u64,
    /// How long a graceful drain waits for admitted queries to finish
    /// before abandoning them with `shutting-down` errors
    /// (`docs/PROTOCOL.md` §6.2).
    pub drain_timeout_ms: u64,
    /// When non-zero, a metrics-log thread writes one JSON line to stderr
    /// every this-many milliseconds: the full `StatsV2` snapshot plus the
    /// slow-query ring (`--metrics-log` in `priograph-server`).
    pub metrics_log_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            default_schedule: Schedule::lazy(32),
            max_batch: 256,
            pending_budget: 4096,
            graph_pending_budget: 1024,
            manifest: None,
            mmap_populate: false,
            max_connections: 256,
            io_timeout_ms: 30_000,
            drain_timeout_ms: 5_000,
            metrics_log_ms: 0,
        }
    }
}

/// Counters shared between connections, the executor packets, and stats
/// replies.
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batch_rounds: AtomicU64,
    point_queries: AtomicU64,
    full_queries: AtomicU64,
    errors: AtomicU64,
    busy_rejections: AtomicU64,
    tune_runs: AtomicU64,
    timeouts: AtomicU64,
    rejected_connections: AtomicU64,
}

/// State shared by every thread of one server instance.
#[derive(Debug)]
struct Shared {
    catalog: Catalog,
    default_schedule: Schedule,
    threads: usize,
    counters: Counters,
    /// Queries admitted but not yet answered, bounded by `pending_budget`
    /// (per-graph counts live on each [`GraphEntry`]).
    pending: AtomicU64,
    pending_budget: u64,
    graph_budget: u64,
    max_batch: u64,
    /// EWMA of request execution wall time (nanoseconds) — the basis of
    /// the `retry_after_ms` hint in [`Response::Busy`].
    round_nanos: AtomicU64,
    shutdown: AtomicBool,
    /// Graceful-drain flag: accepting stops, new requests get a typed
    /// `shutting-down` refusal, in-flight queries finish (bounded by
    /// `drain_timeout_ms`), then `shutdown` is raised and the manifest
    /// flushed (`docs/PROTOCOL.md` §6.2).
    draining: AtomicBool,
    /// Currently served connections, bounded by `max_connections`.
    connections: AtomicU64,
    max_connections: u64,
    io_timeout_ms: u64,
    drain_timeout_ms: u64,
    /// splitmix64 walk feeding the ±25% jitter on `retry_after_ms`.
    retry_jitter: AtomicU64,
    /// PR 8 telemetry: phase histograms, engine round profile, error-kind
    /// counters, slow-query ring — everything behind `StatsV2`.
    telemetry: Telemetry,
    /// The work-stealing execution core (`docs/ARCHITECTURE.md` §10):
    /// point queries ride the Interactive lane, full-vector queries and
    /// tune runs the Background lane.
    exec: Executor,
    /// A [`Pool`] attached to `exec`: every engine broadcast publishes a
    /// gang region across the executor's workers, whose barrier waits
    /// steal Interactive packets.
    pool: Pool,
    /// Per-graph per-worker point-query engines, indexed by executor
    /// worker slot (created on first point query, dropped on unload).
    engines: Mutex<HashMap<GraphId, Arc<WorkerLocal<QueryEngine>>>>,
    /// Per-worker telemetry series caches (slot-indexed so the steady
    /// state path locks an uncontended mutex).
    series: Vec<Mutex<SeriesCache>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let (num_vertices, num_edges) = match self.catalog.get(0) {
            Some(entry) => (
                entry.graph.num_vertices() as u64,
                entry.graph.num_edges() as u64,
            ),
            None => (0, 0),
        };
        ServerStats {
            num_vertices,
            num_edges,
            threads: self.threads as u64,
            queries: self.counters.queries.load(Ordering::Relaxed),
            batch_rounds: self.counters.batch_rounds.load(Ordering::Relaxed),
            point_queries: self.counters.point_queries.load(Ordering::Relaxed),
            full_queries: self.counters.full_queries.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            graphs: self.catalog.len() as u64,
            busy_rejections: self.counters.busy_rejections.load(Ordering::Relaxed),
            tune_runs: self.counters.tune_runs.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            rejected_connections: self.counters.rejected_connections.load(Ordering::Relaxed),
        }
    }

    /// The self-describing v5 stats frame: every legacy counter by name,
    /// the new counters (per-error-kind, drain, engine totals, scheduler
    /// activity), and the phase/engine latency series
    /// (`docs/PROTOCOL.md` §4.3).
    fn stats_v2(&self) -> StatsV2 {
        self.telemetry.stats_v2(&self.stats(), self.exec.stats())
    }

    /// The per-worker point engines for `graph`, sized to the executor
    /// (created on first use; [`Shared::gc_graph_state`] drops them when
    /// the graph unloads). One brief map lock per request, never per query.
    fn point_engines(&self, graph: GraphId) -> Arc<WorkerLocal<QueryEngine>> {
        let mut map = self.engines.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(graph)
                .or_insert_with(|| Arc::new(WorkerLocal::new(self.exec.num_workers()))),
        )
    }

    /// Engine-state GC, run after an unload: drops per-graph point
    /// engines and trims the per-worker series caches, so unloading a
    /// graph releases its engine memory too.
    fn gc_graph_state(&self) {
        self.engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|id, _| self.catalog.contains(*id));
        for cache in &self.series {
            cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain_graphs(|id| self.catalog.contains(id));
        }
    }

    /// Estimates how long until `pending` queries drain: rounds needed at
    /// `max_batch` per round times the EWMA round cost, clamped to a sane
    /// band (at least 1ms so clients cannot busy-spin on the hint, at most
    /// 2s so a one-off huge round cannot park clients forever), then
    /// jittered ±25% so the rejected clients of one admission window do
    /// not all come back in the same instant (final band [1, 2500]ms,
    /// `docs/PROTOCOL.md` §6).
    fn retry_hint_ms(&self, pending: u64) -> u64 {
        let round_ms = self.round_nanos.load(Ordering::Relaxed) / 1_000_000;
        let rounds = pending / self.max_batch.max(1) + 1;
        let base = rounds.saturating_mul(round_ms.max(1)).clamp(1, 2_000);
        jitter_retry_ms(base, &self.retry_jitter)
    }

    /// Folds one measured round duration into the EWMA (α = 1/4).
    fn observe_round(&self, nanos: u64) {
        let old = self.round_nanos.load(Ordering::Relaxed);
        let new = if old == 0 {
            nanos
        } else {
            old - old / 4 + nanos / 4
        };
        self.round_nanos.store(new, Ordering::Relaxed);
    }

    /// Builds the `Busy` refusal for `scope`, counting it.
    fn busy(&self, scope: BusyScope, pending: u64, budget: u64) -> Response {
        self.counters
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
        Response::Busy {
            scope,
            pending,
            budget,
            retry_after_ms: self.retry_hint_ms(pending),
        }
    }
}

/// Applies deterministic ±25% jitter to a retry hint. Each call advances a
/// lock-free splitmix64 walk on `state`, so concurrent refusals draw
/// distinct factors and synchronized clients spread across the next
/// admission window instead of thundering-herding it.
fn jitter_retry_ms(base: u64, state: &AtomicU64) -> u64 {
    let x = state
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Factor in [0.750, 1.250], per-mille resolution; floor at 1ms so the
    // hint can never tell a client to retry immediately.
    let permille = 750 + z % 501;
    (base.saturating_mul(permille) / 1000).max(1)
}

/// Bounded reserve: adds `count` to `counter` unless that would exceed
/// `cap`; reports the current value on refusal.
fn reserve(counter: &AtomicU64, count: u64, cap: u64) -> Result<(), u64> {
    loop {
        let current = counter.load(Ordering::Acquire);
        let wanted = current.saturating_add(count);
        if wanted > cap {
            return Err(current);
        }
        if counter
            .compare_exchange(current, wanted, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return Ok(());
        }
    }
}

/// RAII release of one request's admission reservations: the global count
/// plus one count per distinct graph.
struct AdmissionGuard {
    shared: Arc<Shared>,
    global: u64,
    graphs: Vec<(Arc<GraphEntry>, u64)>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.shared.pending.fetch_sub(self.global, Ordering::AcqRel);
        for (entry, count) in &self.graphs {
            entry.pending.fetch_sub(*count, Ordering::AcqRel);
        }
    }
}

/// **Admission stage**: reserves quota for every resolved query of one
/// request — per-graph first (fairness), then the global budget (backstop).
///
/// `entries` is the request's queries with their graphs already resolved
/// (`None` = unknown graph, answered with an error and never reserved).
/// On refusal nothing stays reserved and the caller forwards the returned
/// [`Response::Busy`] verbatim.
fn try_admit(
    shared: &Arc<Shared>,
    entries: &[Option<Arc<GraphEntry>>],
) -> Result<AdmissionGuard, Response> {
    // Aggregate per distinct graph (requests are small; linear scan).
    let mut per_graph: Vec<(Arc<GraphEntry>, u64)> = Vec::new();
    let mut total = 0u64;
    for entry in entries.iter().flatten() {
        total += 1;
        match per_graph.iter_mut().find(|(e, _)| e.id == entry.id) {
            Some((_, count)) => *count += 1,
            None => per_graph.push((Arc::clone(entry), 1)),
        }
    }
    let mut guard = AdmissionGuard {
        shared: Arc::clone(shared),
        global: 0,
        graphs: Vec::with_capacity(per_graph.len()),
    };
    for (entry, count) in per_graph {
        match reserve(&entry.pending, count, shared.graph_budget) {
            Ok(()) => guard.graphs.push((entry, count)),
            Err(pending) => {
                // Dropping the partial guard rolls back earlier graphs.
                return Err(shared.busy(BusyScope::Graph(entry.id), pending, shared.graph_budget));
            }
        }
    }
    match reserve(&shared.pending, total, shared.pending_budget) {
        Ok(()) => guard.global = total,
        Err(pending) => {
            return Err(shared.busy(BusyScope::Global, pending, shared.pending_budget));
        }
    }
    Ok(guard)
}

/// Handle to a running server.
///
/// Dropping the handle stops the server; [`ServerHandle::stop`] does so
/// explicitly (hard stop: queued work is abandoned with `shutting-down`
/// errors), [`ServerHandle::drain`] instead runs the graceful path, and
/// [`ServerHandle::join`] blocks until a client sends
/// [`Request::Shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server hard: no new connections are accepted, queued
    /// work is abandoned (clients get typed `shutting-down` errors), and
    /// both service threads are joined. For the graceful path use
    /// [`ServerHandle::drain`].
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Gracefully drains and blocks until the server has exited: stop
    /// accepting, answer queries already admitted (bounded by
    /// [`ServerConfig::drain_timeout_ms`]), flush the manifest
    /// (`docs/PROTOCOL.md` §6.2).
    pub fn drain(mut self) {
        self.drain_trigger().drain();
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
    }

    /// A clonable trigger for the graceful-drain path, safe to hand to a
    /// signal-watcher thread: firing it starts the drain without consuming
    /// or blocking this handle ([`ServerHandle::join`] then returns once
    /// the drain completes).
    pub fn drain_trigger(&self) -> DrainTrigger {
        DrainTrigger {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Blocks until the server shuts down (via [`Request::Shutdown`], a
    /// fired [`DrainTrigger`], or [`ServerHandle::stop`] from another
    /// handle-owning thread).
    pub fn join(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
    }

    fn stop_inner(&mut self) {
        // Raising both flags makes this a hard stop: the drain wait in
        // drain_then_stop sees `shutdown` already set and skips straight
        // to the executor stop + manifest flush.
        self.shared.draining.store(true, Ordering::Release);
        self.shared.shutdown.store(true, Ordering::Release);
        // Kick the blocking accept() so the listener observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
    }
}

/// Routes an external shutdown signal (SIGINT/SIGTERM in
/// `priograph-server`, or any supervisor) into the graceful-drain path.
/// Obtained from [`ServerHandle::drain_trigger`]; clonable and cheap.
#[derive(Debug, Clone)]
pub struct DrainTrigger {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl DrainTrigger {
    /// Begins a graceful drain and returns immediately: accepting stops,
    /// admitted queries get answered (bounded by
    /// [`ServerConfig::drain_timeout_ms`]), the manifest is flushed. Join
    /// the [`ServerHandle`] to wait for completion.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        // Kick the blocking accept() so the listener observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.listener.is_some() {
            self.stop_inner();
        }
    }
}

/// Starts serving a single graph (catalog id 0, named `default`) per
/// `config`, returning once the listen socket is bound. More graphs can be
/// loaded over the wire (`LoadGraph`) afterwards; [`serve_named`] starts
/// with several.
///
/// # Errors
///
/// Propagates socket bind/spawn failures.
pub fn serve(graph: CsrGraph, config: ServerConfig) -> io::Result<ServerHandle> {
    serve_named(vec![("default".to_string(), graph)], config)
}

/// Starts serving `graphs` under catalog ids `0..n` (in order) with the
/// given names. Each graph's load mode is taken from how it is resident
/// (a [`SnapshotView`](priograph_graph::SnapshotView)-loaded graph reports
/// `mmap`). When [`ServerConfig::manifest`] is set, graphs recorded there
/// restore *after* the startup graphs (duplicate names keep the startup
/// copy) and every catalog change rewrites the file.
///
/// # Errors
///
/// Propagates socket bind/spawn failures.
pub fn serve_named(
    graphs: Vec<(String, CsrGraph)>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let map_options = if config.mmap_populate {
        MapOptions::populate_sequential()
    } else {
        MapOptions::default()
    };
    let catalog = Catalog::with_options(
        graphs
            .into_iter()
            .map(|(name, graph)| {
                let mode = if graph.is_mapped() {
                    LoadMode::Mapped
                } else {
                    LoadMode::Owned
                };
                (name, graph, mode)
            })
            .collect(),
        map_options,
    );
    if let Some(manifest) = &config.manifest {
        let report = catalog.attach_manifest(manifest.clone());
        for name in &report.loaded {
            eprintln!("manifest: restored graph {name:?}");
        }
        for (graph, family) in &report.plans {
            eprintln!("manifest: reinstalled tuned {family} plan for {graph:?}");
        }
        for (what, why) in &report.skipped {
            eprintln!("manifest: skipped {what:?}: {why}");
        }
    }
    // The execution core: one work-stealing executor per server. Point
    // queries ride its Interactive lane; full-vector queries and tunes
    // publish gang regions through the attached pool on the Background
    // lane (`docs/ARCHITECTURE.md` §10).
    let exec = Executor::new(config.threads.max(1));
    let pool = Pool::attach(&exec);
    let series = (0..exec.num_workers())
        .map(|_| Mutex::new(SeriesCache::default()))
        .collect();
    let shared = Arc::new(Shared {
        catalog,
        default_schedule: config.default_schedule.clone(),
        threads: config.threads.max(1),
        counters: Counters::default(),
        pending: AtomicU64::new(0),
        pending_budget: config.pending_budget.max(1) as u64,
        graph_budget: config.graph_pending_budget.max(1) as u64,
        max_batch: config.max_batch.max(1) as u64,
        round_nanos: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        max_connections: config.max_connections.max(1) as u64,
        io_timeout_ms: config.io_timeout_ms.max(1),
        drain_timeout_ms: config.drain_timeout_ms,
        retry_jitter: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
        telemetry: Telemetry::default(),
        exec,
        pool,
        engines: Mutex::new(HashMap::new()),
        series,
    });
    if config.metrics_log_ms > 0 {
        let shared = Arc::clone(&shared);
        let interval = Duration::from_millis(config.metrics_log_ms);
        let started = Instant::now();
        // Detached: the logger polls the shutdown flag between short
        // sleeps and exits within ~100ms of the server stopping.
        let _ = std::thread::Builder::new()
            .name("priograph-metrics".to_string())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                while !shared.shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(100).min(interval));
                    if Instant::now() < next {
                        continue;
                    }
                    next = Instant::now() + interval;
                    let uptime_ms = started.elapsed().as_millis() as u64;
                    eprintln!(
                        "{}",
                        shared.telemetry.metrics_json(
                            &shared.stats(),
                            shared.exec.stats(),
                            uptime_ms
                        )
                    );
                }
            });
    }

    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("priograph-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &shared, addr);
                drain_then_stop(&shared);
            })?
    };

    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_thread),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, addr: SocketAddr) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // accept can fail persistently (e.g. fd exhaustion under a
                // connection flood) — and then the stop() kick-connect fails
                // too, so the shutdown flag must be checked here, and the
                // retry must back off instead of busy-spinning.
                if shared.shutdown.load(Ordering::Acquire)
                    || shared.draining.load(Ordering::Acquire)
                {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            return;
        }
        // Connection cap: over it, the peer gets one typed `overloaded`
        // frame and the socket closes — no handler thread spawns, so a
        // connection flood cannot exhaust threads or fds held by handlers.
        if reserve(&shared.connections, 1, shared.max_connections).is_err() {
            refuse_connection(shared, stream);
            continue;
        }
        let guard = ConnGuard(Arc::clone(shared));
        let shared = Arc::clone(shared);
        // A failed spawn drops the closure unrun, which drops `guard` and
        // releases the reservation.
        let _ = std::thread::Builder::new()
            .name("priograph-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                let _ = handle_connection(stream, &shared, addr);
            });
    }
}

/// RAII release of one accepted connection's slot under the cap.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Typed refusal for a connection over the cap: one `overloaded` error
/// frame on a short write budget, then the socket drops. The peer gets a
/// decodable reason (with a jittered retry hint) instead of a silent RST.
fn refuse_connection(shared: &Shared, mut stream: TcpStream) {
    shared
        .counters
        .rejected_connections
        .fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
    let hint = jitter_retry_ms(50, &shared.retry_jitter);
    let refusal = Response::error(
        ErrorKind::Overloaded,
        format!(
            "connection limit of {} reached; retry in {hint}ms",
            shared.max_connections
        ),
    );
    shared.telemetry.count_response_errors(&refusal);
    let _ = write_frame(&mut stream, &refusal.encode());
}

/// The drain supervisor, run on the listener thread once accepting has
/// stopped: wait (bounded by `drain_timeout_ms`) for admitted work to be
/// answered, then stop the executor and flush the manifest so the
/// catalog and its tuned plans reload on restart. A hard
/// [`ServerHandle::stop`] arrives here with `shutdown` already raised and
/// skips the wait.
fn drain_then_stop(shared: &Shared) {
    let deadline = Instant::now() + Duration::from_millis(shared.drain_timeout_ms);
    while !shared.shutdown.load(Ordering::Acquire)
        && shared.pending.load(Ordering::Acquire) > 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.shutdown.store(true, Ordering::Release);
    // Stop the executor: in-flight packets finish, queued-but-unstarted
    // packets drop (their reply channels disconnect into typed
    // `shutting-down` errors on the connection side — see Slot::collect).
    shared.exec.shutdown();
    shared.catalog.persist();
}

/// A per-query slot of an in-progress request: either already answered on
/// the connection thread (admission failures) or pending at the executor.
enum Slot {
    Ready(Response),
    Pending(mpsc::Receiver<Response>),
}

impl Slot {
    /// Waits for the slot's reply. Once the server-wide shutdown flag is
    /// up, the executor is (re-)drained — idempotent — so a packet that
    /// was still queued when the workers stopped resolves to a typed
    /// `shutting-down` error instead of wedging this connection thread.
    fn collect(self, shared: &Shared) -> Response {
        let shutting_down = || Response::error(ErrorKind::ShuttingDown, "server is shutting down");
        match self {
            Slot::Ready(resp) => resp,
            Slot::Pending(rx) => loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    // After shutdown() returns, every packet either ran
                    // (reply buffered in the channel) or was dropped.
                    shared.exec.shutdown();
                    return rx.try_recv().unwrap_or_else(|_| shutting_down());
                }
                match rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(resp) => return resp,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return shutting_down(),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                }
            },
        }
    }
}

/// [`ChainDriver`] of one admitted request: round 0 is the Interactive
/// point-query phase, round 1 the Background full-vector phase. The second
/// round is opened by the last-out worker once every point packet has
/// drained — the per-request bucket open-condition that replaced the old
/// dispatcher's global round barrier. Empty phases are skipped at build
/// time, so a points-only or fulls-only request is a one-round chain.
struct RequestDriver {
    phases: std::vec::IntoIter<Round>,
}

impl ChainDriver for RequestDriver {
    fn next_round(&mut self, _round: usize) -> Option<Round> {
        self.phases.next()
    }
}

/// Admits and submits one request's queries: resolves every graph
/// (admission), reserves quotas, submits the admitted queries to the
/// executor as one [`RoundChain`] (points Interactive, fulls Background),
/// and collects the replies in request order.
///
/// # Errors
///
/// An admission refusal returns the whole request's single
/// [`Response::Busy`] — nothing was executed or queued.
fn admit_and_run(shared: &Arc<Shared>, queries: &[Query]) -> Result<Vec<Response>, Response> {
    let entries: Vec<Option<Arc<GraphEntry>>> = queries
        .iter()
        .map(|q| shared.catalog.get(q.graph))
        .collect();
    let guard = try_admit(shared, &entries)?;
    // Deadline budgets start at admission: time queued behind other work
    // counts against the query, not just its execution.
    let admitted = Instant::now();
    let mut interactive: Vec<WorkPacket> = Vec::new();
    let mut background: Vec<WorkPacket> = Vec::new();
    let slots: Vec<Slot> = queries
        .iter()
        .zip(&entries)
        .map(|(&query, entry)| match entry {
            Some(entry) => {
                shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                let (reply_tx, reply_rx) = mpsc::channel();
                let job = QueryJob {
                    entry: Arc::clone(entry),
                    query,
                    admitted,
                    reply: reply_tx,
                };
                let shared = Arc::clone(shared);
                let packet = WorkPacket::new(move |ctx: &ExecCtx<'_>| {
                    run_query_packet(&shared, ctx.worker(), job);
                });
                match query.op {
                    QueryOp::Ppsp => interactive.push(packet),
                    _ => background.push(packet),
                }
                Slot::Pending(reply_rx)
            }
            None => {
                shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                Slot::Ready(Response::error(
                    ErrorKind::UnknownGraph,
                    format!("no resident graph with id {}", query.graph),
                ))
            }
        })
        .collect();
    let phases: Vec<Round> = [
        (Lane::Interactive, interactive),
        (Lane::Background, background),
    ]
    .into_iter()
    .filter(|(_, packets)| !packets.is_empty())
    .map(|(lane, packets)| Round { lane, packets })
    .collect();
    shared
        .counters
        .batch_rounds
        .fetch_add(phases.len() as u64, Ordering::Relaxed);
    let submitted = Instant::now();
    let chain = (!phases.is_empty()).then(|| {
        RoundChain::start(
            &shared.exec,
            RequestDriver {
                phases: phases.into_iter(),
            },
        )
    });
    let responses: Vec<Response> = slots.into_iter().map(|slot| slot.collect(shared)).collect();
    if chain.is_some() {
        // Feed the Busy retry hint's EWMA with this request's wall time
        // (tunes are deliberately excluded — one multi-second tune folded
        // in would pin the hint at its clamp long after the tuner exits).
        shared.observe_round(submitted.elapsed().as_nanos() as u64);
    }
    drop(guard);
    Ok(responses)
}

/// Admits and submits one `TuneGraph` request as a Maintenance packet,
/// blocking until the tuner finishes (tuning holds one pending slot on its
/// graph, so backpressure sees it like any other in-flight work; point
/// queries and scans keep overtaking it on the higher lanes throughout).
fn admit_and_tune(shared: &Arc<Shared>, graph: GraphId, algo: QueryOp, budget: u32) -> Response {
    let Some(family) = algo.family() else {
        return Response::error(
            ErrorKind::BadRequest,
            "point queries run on the strict-priority serial engine and have no \
             tunable plan; tune sssp, wbfs, or kcore",
        );
    };
    let Some(entry) = shared.catalog.get(graph) else {
        return Response::error(
            ErrorKind::UnknownGraph,
            format!("no resident graph with id {graph}"),
        );
    };
    let entries = [Some(Arc::clone(&entry))];
    let guard = match try_admit(shared, &entries) {
        Ok(guard) => guard,
        Err(busy) => return busy,
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let packet_shared = Arc::clone(shared);
    shared
        .exec
        .submit(Lane::Maintenance, move |_ctx: &ExecCtx<'_>| {
            let response = run_tune(&packet_shared, &packet_shared.pool, &entry, family, budget);
            let _ = reply_tx.send(response);
        });
    let response = Slot::Pending(reply_rx).collect(shared);
    drop(guard);
    response
}

/// Serves one client connection; returns on disconnect, drain, or
/// shutdown. Socket reads and writes run under
/// [`ServerConfig::io_timeout_ms`]: an idle connection (no frame started)
/// survives read timeouts, but a peer that stalls *inside* a frame — the
/// slow-loris shape — is dropped so it cannot wedge this handler thread.
fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    addr: SocketAddr,
) -> Result<(), WireError> {
    let _ = stream.set_nodelay(true);
    let io_timeout = Duration::from_millis(shared.io_timeout_ms);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    #[cfg(feature = "fault-inject")]
    let mut stream = crate::faults::FaultyStream::wrap(stream);
    #[cfg(not(feature = "fault-inject"))]
    let mut stream = stream;
    loop {
        let payload = match read_frame_or_idle(&mut stream)? {
            FrameIn::Payload(payload) => payload,
            FrameIn::Closed => return Ok(()), // clean disconnect between frames
            FrameIn::Idle => {
                // An idle client holds only its connection slot; drop it
                // once the server is going away, keep it otherwise.
                if shared.shutdown.load(Ordering::Acquire)
                    || shared.draining.load(Ordering::Acquire)
                {
                    return Ok(());
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            // Draining: already-admitted work finishes, but no new request
            // gets in — a typed refusal, then the connection closes. Counted
            // twice on purpose: once as the generic `errors.shutting-down`
            // kind, once under the dedicated `drain_rejections` counter
            // (previously these refusals were invisible in stats).
            let refusal =
                Response::error(ErrorKind::ShuttingDown, "server is draining; not served");
            shared.telemetry.count_drain_rejection();
            shared.telemetry.count_response_errors(&refusal);
            let _ = write_frame(&mut stream, &refusal.encode());
            return Ok(());
        }
        let response = match Request::decode(&payload) {
            Ok(Request::Stats) => Response::Stats(shared.stats()),
            Ok(Request::StatsV2) => Response::StatsV2(shared.stats_v2()),
            Ok(Request::Shutdown) => {
                // A wire shutdown takes the graceful path: raise the drain
                // flag (before the Bye, so a client that saw Bye never
                // gets served again), then kick the accept loop awake to
                // run it (`docs/PROTOCOL.md` §6.2).
                shared.draining.store(true, Ordering::Release);
                let _ = TcpStream::connect(addr);
                write_frame(&mut stream, &Response::Bye.encode())?;
                return Ok(());
            }
            Ok(Request::Query(query)) => {
                match admit_and_run(shared, std::slice::from_ref(&query)) {
                    // lint: allow-panic admit_and_run returns one response per query by construction
                    Ok(mut responses) => responses.pop().expect("one query, one response"),
                    Err(busy) => busy,
                }
            }
            Ok(Request::Batch(queries)) => match admit_and_run(shared, &queries) {
                Ok(responses) => Response::Batch(responses),
                Err(busy) => busy,
            },
            Ok(Request::TuneGraph {
                graph,
                algo,
                budget,
            }) => admit_and_tune(shared, graph, algo, budget),
            Ok(Request::LoadGraph { name, path }) => load_graph(shared, &name, &path),
            Ok(Request::UnloadGraph { name }) => match shared.catalog.unload(&name) {
                Ok(_) => {
                    // Release the unloaded graph's engine state (its point
                    // engines and cached series sinks) right away.
                    shared.gc_graph_state();
                    Response::Unloaded
                }
                Err(e) => Response::error(ErrorKind::UnknownGraph, e.to_string()),
            },
            Ok(Request::ListGraphs) => Response::GraphList(
                shared
                    .catalog
                    .list()
                    .iter()
                    .map(|entry| entry.info())
                    .collect(),
            ),
            // An outdated client cannot decode any current-version frame,
            // so the mismatch gets an in-band error *shaped in the client's
            // version*, and the connection closes
            // (`docs/PROTOCOL.md` §Versioning).
            Err(WireError::VersionMismatch { got }) if got < PROTOCOL_VERSION => {
                let message = format!(
                    "protocol version {got} is no longer served; this server \
                     speaks version {PROTOCOL_VERSION} — upgrade the client"
                );
                match legacy_error_payload(got, &message) {
                    Some(payload) => {
                        // This refusal is encoded in the legacy shape, so it
                        // bypasses the Response choke point below — count
                        // its kind directly.
                        shared
                            .telemetry
                            .count_error_kind(ErrorKind::UnsupportedVersion);
                        write_frame(&mut stream, &payload)?;
                        return Ok(());
                    }
                    // Version 0 was never spoken: answer in-band, current
                    // shape, and keep the connection (it is framing noise,
                    // not a real old client).
                    None => Response::error(ErrorKind::UnsupportedVersion, message),
                }
            }
            Err(WireError::VersionMismatch { got }) => Response::error(
                ErrorKind::UnsupportedVersion,
                format!("client version {got} is newer than server version {PROTOCOL_VERSION}"),
            ),
            // Framing survives a malformed payload, so report and carry on.
            Err(e) => Response::error(ErrorKind::BadRequest, e.to_string()),
        };
        let mut response = response;
        let mut encoded = response.encode();
        if encoded.len() > crate::protocol::MAX_FRAME_LEN {
            // Never kill the connection over an oversized answer (a batch
            // of full-vector queries can cross the cap even though each
            // fits): degrade to an in-band error the client can act on.
            response = Response::error(
                ErrorKind::TooLarge,
                format!(
                    "response of {} bytes exceeds the {} byte frame cap; \
                     split the batch or use point queries",
                    encoded.len(),
                    crate::protocol::MAX_FRAME_LEN
                ),
            );
            encoded = response.encode();
        }
        // The one choke point where every served response hits the wire:
        // per-kind error counters move here (and only here), after the
        // TooLarge degrade, so counts reflect what the client actually saw.
        shared.telemetry.count_response_errors(&response);
        write_frame(&mut stream, &encoded)?;
        if shared.shutdown.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            return Ok(()); // stop serving this connection once shutdown began
        }
    }
}

fn load_graph(shared: &Shared, name: &str, path: &str) -> Response {
    if name.is_empty() {
        return Response::error(ErrorKind::BadRequest, "graph name must not be empty");
    }
    // Fault injection may substitute a truncated copy of the snapshot; it
    // goes through the real open/validate path below, so torn loads
    // exercise the same typed `LoadFailed` surface clients see.
    #[cfg(feature = "fault-inject")]
    let truncated = crate::faults::maybe_truncate_snapshot(path);
    #[cfg(feature = "fault-inject")]
    let path = truncated.as_ref().map_or(path, |t| t.path());
    match shared.catalog.load(name, path) {
        Ok(entry) => Response::Loaded(entry.info()),
        Err(e @ CatalogError::NameTaken(_)) => {
            Response::error(ErrorKind::BadRequest, e.to_string())
        }
        Err(e) => Response::error(ErrorKind::LoadFailed, e.to_string()),
    }
}

/// Whether a full distance/coreness vector for `n` vertices fits one
/// frame (with generous envelope slack). Beyond this, full-vector queries
/// get an in-band error up front instead of a dead connection after the
/// engine has already done the work.
fn dist_vec_fits(n: usize) -> bool {
    n.saturating_mul(8).saturating_add(4096) <= crate::protocol::MAX_FRAME_LEN
}

/// **Planning stage**: resolves the schedule one full-vector query executes
/// under. A pinned strategy bypasses the planner (resolved against the
/// server default exactly as before the planning layer existed); everything
/// else runs the graph's installed plan, with a client-supplied Δ override
/// honored where the family allows coarsening.
fn planned_schedule(shared: &Shared, entry: &GraphEntry, query: &Query) -> Schedule {
    let family = query
        .op
        .family()
        // lint: allow-panic the dispatcher routes point queries to the batch path, never here
        .expect("point queries never reach the planner");
    if query.schedule.strategy == WireStrategy::ServerDefault {
        let mut schedule = entry.plans.plan_for(family).schedule;
        if query.schedule.delta > 0 && family.coarsening_allowed() {
            schedule.delta = query.schedule.delta;
        }
        schedule
    } else {
        query.schedule.resolve(&shared.default_schedule)
    }
}

/// One admitted query riding the executor as a packet, with its graph
/// resolved at admission (so an unload mid-flight cannot invalidate it —
/// the `Arc` keeps the graph alive) and the admission instant anchoring
/// its deadline budget.
struct QueryJob {
    entry: Arc<GraphEntry>,
    query: Query,
    admitted: Instant,
    reply: mpsc::Sender<Response>,
}

/// Whether `job`'s deadline budget (measured from admission) has expired.
/// Queries without a deadline (`deadline_ms == 0`) never expire.
fn deadline_expired(job: &QueryJob, now: Instant) -> bool {
    let budget = job.query.deadline_ms;
    budget > 0 && now.duration_since(job.admitted).as_millis() >= u128::from(budget)
}

/// The typed `Timeout` reply for an expired query, counted in
/// `stats.timeouts`.
fn timeout_error(shared: &Shared, job: &QueryJob) -> Response {
    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
    Response::error(
        ErrorKind::Timeout,
        format!(
            "deadline of {}ms expired {}ms after admission; query dropped before execution",
            job.query.deadline_ms,
            job.admitted.elapsed().as_millis()
        ),
    )
}

/// **Execution stage**: runs one admitted query as an executor packet on
/// worker `slot` — deadline shed, vertex validation, engine execution,
/// telemetry, then the reply handoff.
///
/// Point queries run on the graph's per-worker [`QueryEngine`] for this
/// slot (exclusive by construction: a worker runs one packet at a time,
/// and gang-barrier steals run with the shadow region suspended on
/// disjoint engine state). Full-vector queries publish gang regions
/// through the server's attached pool, with the telemetry round observer
/// threaded through every engine round.
///
/// The phase span is recorded **before** the reply is handed off: a client
/// that has collected every reply of its batch observes complete phase
/// series in a subsequent `StatsV2`, and every span is a strict
/// sub-interval of the client's wall clock.
fn run_query_packet(shared: &Arc<Shared>, slot: usize, job: QueryJob) {
    let started = Instant::now();
    let q = &job.query;
    let n = job.entry.graph.num_vertices();
    let mut window: Option<(Instant, Instant)> = None;
    let response = if deadline_expired(&job, started) {
        // Expired while queued (behind earlier packets or an engine run):
        // dropped without executing — no engine counters move.
        timeout_error(shared, &job)
    } else {
        match q.op {
            QueryOp::Ppsp => {
                if (q.source as usize) < n && (q.target as usize) < n {
                    shared
                        .counters
                        .point_queries
                        .fetch_add(1, Ordering::Relaxed);
                    job.entry.queries.fetch_add(1, Ordering::Relaxed);
                    let engines = shared.point_engines(job.entry.id);
                    let exec_started = Instant::now();
                    let answer = engines.with_mut(slot, |engine| {
                        engine.point_query(&job.entry.graph, q.source, q.target)
                    });
                    window = Some((exec_started, Instant::now()));
                    Response::Distance {
                        distance: answer.distance,
                        relaxations: answer.relaxations,
                    }
                } else {
                    vertex_error(q, n)
                }
            }
            QueryOp::Sssp | QueryOp::Wbfs if (q.source as usize) >= n => vertex_error(q, n),
            _ => {
                shared.counters.full_queries.fetch_add(1, Ordering::Relaxed);
                job.entry.queries.fetch_add(1, Ordering::Relaxed);
                let exec_started = Instant::now();
                // A panicking engine (a poisoned gang region) must not eat
                // the reply: degrade to a typed internal error.
                let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_full_query(shared, &shared.pool, &job)
                }))
                .unwrap_or_else(|_| {
                    Response::error(
                        ErrorKind::Internal,
                        format!("{} execution panicked; see server logs", q.op),
                    )
                });
                window = Some((exec_started, Instant::now()));
                resp
            }
        }
    };
    if matches!(response, Response::Error { .. }) {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    // Phase span: queued = admission → packet start, planned = packet
    // start → execution start (validation + plan resolution), executed =
    // the engine window, responded = execution end → reply handoff. A
    // query that never executed (shed, bad vertex) collapses its
    // plan/exec phases into `responded`.
    let responded = Instant::now();
    let span = match window {
        Some((exec_started, finished)) => QuerySpan {
            queued_us: micros_between(job.admitted, started),
            planned_us: micros_between(started, exec_started),
            executed_us: micros_between(exec_started, finished),
            responded_us: micros_between(finished, responded),
        },
        None => QuerySpan {
            queued_us: micros_between(job.admitted, started),
            planned_us: 0,
            executed_us: 0,
            responded_us: micros_between(started, responded),
        },
    };
    {
        // The slot-indexed cache mutex is uncontended in steady state (a
        // worker runs one packet at a time); the shared telemetry map's
        // lock is taken only on first sight of a (graph, op) key.
        let mut cache = shared.series[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let sink = cache.sink(&shared.telemetry, (job.entry.id, q.op));
        shared.telemetry.record_span(sink, &span);
    }
    let (entry, query) = (&job.entry, &job.query);
    // The plan string renders only if this query displaces a slow-ring
    // entry — the steady-state cost is one atomic load.
    shared
        .telemetry
        .offer_slow(entry.id, query.op, span, || match query.op {
            QueryOp::Ppsp => "point-serial".to_string(),
            _ => planned_schedule(shared, entry, query).to_string(),
        });
    let _ = job.reply.send(response);
}

/// Microseconds from `a` to `b`, zero when the clock reads them reversed
/// (sub-microsecond phases across threads).
fn micros_between(a: Instant, b: Instant) -> u64 {
    b.saturating_duration_since(a).as_micros() as u64
}

fn vertex_error(q: &Query, n: usize) -> Response {
    Response::error(
        ErrorKind::BadVertex,
        format!(
            "vertex out of range (source {}, target {}, graph {} has {n})",
            q.source, q.target, q.graph
        ),
    )
}

/// **Execution stage** for one full-vector query, under its planned (or
/// pinned) schedule.
fn run_full_query(shared: &Shared, pool: &Pool, job: &QueryJob) -> Response {
    let query = &job.query;
    let graph = &job.entry.graph;
    if !dist_vec_fits(graph.num_vertices()) {
        return Response::error(
            ErrorKind::TooLarge,
            format!(
                "full-vector responses for {} vertices exceed the wire frame cap; \
                 use point (ppsp) queries against this graph",
                graph.num_vertices()
            ),
        );
    }
    let schedule = planned_schedule(shared, &job.entry, query);
    // The engines report every synchronized round to the telemetry's
    // RoundObserver impl — three relaxed atomic ops per round, measured
    // within the noise floor of bench-smoke, so it stays on for every
    // production query.
    let observer = Some(&shared.telemetry as &dyn RoundObserver);
    match query.op {
        // lint: allow-panic run_full_query is only called for full-vector ops
        QueryOp::Ppsp => unreachable!("point queries are batched"),
        QueryOp::Sssp => {
            match sssp::delta_stepping_observed(pool, graph, query.source, &schedule, observer) {
                Ok(r) => Response::DistVec(r.dist),
                Err(e) => Response::error(ErrorKind::ScheduleRejected, e.to_string()),
            }
        }
        QueryOp::Wbfs => {
            match wbfs::wbfs_observed(pool, graph, query.source, &schedule, observer) {
                Ok(r) => Response::DistVec(r.dist),
                Err(e) => Response::error(ErrorKind::ScheduleRejected, e.to_string()),
            }
        }
        QueryOp::KCore => {
            let sym = job.entry.sym_graph();
            match kcore::kcore_observed(pool, &sym, &schedule, observer) {
                Ok(r) => Response::Coreness(r.coreness),
                Err(e) => Response::error(ErrorKind::ScheduleRejected, e.to_string()),
            }
        }
    }
}

/// Runs one admitted `TuneGraph` job on the dispatcher's pool: search the
/// family's schedule space against the resident graph, install the winner
/// in the graph's plan cache, persist the catalog manifest.
fn run_tune(
    shared: &Shared,
    pool: &Pool,
    entry: &Arc<GraphEntry>,
    family: AlgoFamily,
    budget: u32,
) -> Response {
    let trials = budget.clamp(1, 512) as usize;
    // k-core tunes against the same symmetrized twin its queries run on.
    let graph = match family {
        AlgoFamily::KCore => entry.sym_graph(),
        AlgoFamily::Sssp | AlgoFamily::Wbfs => Arc::clone(&entry.graph),
    };
    // Deterministic per (graph, family): re-tuning without a graph change
    // reproduces the same search.
    let seed = 0xA0707 ^ ((entry.id as u64) << 8) ^ family as u64;
    let tuned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        priograph_autotune::tune_for_graph(pool, &graph, family, trials, seed)
    }));
    let (plan, result) = match tuned {
        Ok(done) => done,
        Err(_) => {
            return Response::error(
                ErrorKind::Internal,
                format!("autotune run for {family} did not produce a legal schedule"),
            )
        }
    };
    if let Err(e) = entry.plans.install(plan.clone()) {
        return Response::error(ErrorKind::ScheduleRejected, e.to_string());
    }
    shared.catalog.persist();
    shared.counters.tune_runs.fetch_add(1, Ordering::Relaxed);
    Response::Tuned(TuneOutcome {
        graph: entry.id,
        plan: WirePlan::of_plan(&plan),
        trials_run: result.trials.len() as u32,
        best_cost_micros: result.best_cost.as_micros() as u64,
    })
}

/// Formats a distance for human-facing client output (`"-"` when the
/// vertex is unreachable).
pub fn fmt_distance(d: i64) -> String {
    if d >= UNREACHABLE {
        "-".to_string()
    } else {
        d.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::read_frame;
    use priograph_graph::gen::GraphGen;

    fn tiny_server(threads: usize) -> ServerHandle {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        serve(
            graph,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    #[test]
    fn stats_reflect_the_resident_graph() {
        let handle = tiny_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.num_vertices, 64);
        assert!(stats.num_edges > 0);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.graphs, 1);
        assert_eq!(stats.busy_rejections, 0);
        assert_eq!(stats.tune_runs, 0);
        handle.stop();
    }

    #[test]
    fn out_of_range_queries_error_in_band() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client
            .request(&Request::Query(Query::ppsp(0, 9999)))
            .unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    kind: ErrorKind::BadVertex,
                    ..
                }
            ),
            "{resp:?}"
        );
        let resp = client.request(&Request::Query(Query::sssp(9999))).unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    kind: ErrorKind::BadVertex,
                    ..
                }
            ),
            "{resp:?}"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.queries, 2);
        handle.stop();
    }

    #[test]
    fn unknown_graph_id_is_a_typed_error() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client.query(Query::ppsp(0, 1).on_graph(42)).unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    kind: ErrorKind::UnknownGraph,
                    ..
                }
            ),
            "{resp:?}"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.errors, 1);
        handle.stop();
    }

    #[test]
    fn over_budget_requests_get_busy_not_queued() {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                pending_budget: 8,
                graph_pending_budget: 64,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        // A batch larger than the whole global budget can never be admitted
        // (the per-graph quota would have accepted it, so the refusal must
        // carry the Global scope).
        let big: Vec<Query> = (0..9).map(|i| Query::ppsp(0, i)).collect();
        match client.request(&Request::Batch(big)).unwrap() {
            Response::Busy {
                scope,
                pending,
                budget,
                retry_after_ms,
            } => {
                assert_eq!(scope, BusyScope::Global);
                assert_eq!(budget, 8);
                assert!(pending <= 8);
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // A batch that fits is served normally afterwards.
        let ok: Vec<Query> = (0..8).map(|i| Query::ppsp(0, i)).collect();
        let responses = client.batch(ok).unwrap();
        assert_eq!(responses.len(), 8);
        assert!(responses
            .iter()
            .all(|r| matches!(r, Response::Distance { .. })));
        let stats = client.stats().unwrap();
        assert_eq!(stats.busy_rejections, 1);
        assert_eq!(stats.queries, 8, "refused queries never execute");
        handle.stop();
    }

    #[test]
    fn per_graph_quota_refuses_with_graph_scope_while_others_admit() {
        // Two graphs, tiny per-graph quota, roomy global budget: a request
        // overflowing one graph's quota is refused with the *graph* scope,
        // and the other graph's queries are admitted in the same breath —
        // deterministic (single-request) half of the fairness story; the
        // concurrent half lives in tests/loopback.rs.
        let roads = GraphGen::road_grid(8, 8).seed(1).build();
        let social = GraphGen::rmat(6, 4).seed(2).weights_uniform(1, 50).build();
        let handle = serve_named(
            vec![("roads".to_string(), roads), ("social".to_string(), social)],
            ServerConfig {
                threads: 1,
                pending_budget: 4096,
                graph_pending_budget: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        let big: Vec<Query> = (0..5).map(|i| Query::ppsp(0, i)).collect();
        match client.request(&Request::Batch(big)).unwrap() {
            Response::Busy { scope, budget, .. } => {
                assert_eq!(scope, BusyScope::Graph(0));
                assert_eq!(budget, 4);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // The other graph is untouched by graph 0's refusal.
        let ok: Vec<Query> = (0..4).map(|i| Query::ppsp(0, i).on_graph(1)).collect();
        let responses = client.batch(ok).unwrap();
        assert!(responses
            .iter()
            .all(|r| matches!(r, Response::Distance { .. })));
        // A mixed batch overflowing graph 0's quota is refused whole (the
        // client is told which graph to back off from).
        let mixed: Vec<Query> = (0..5)
            .map(|i| Query::ppsp(0, i))
            .chain((0..2).map(|i| Query::ppsp(0, i).on_graph(1)))
            .collect();
        assert!(matches!(
            client.request(&Request::Batch(mixed)).unwrap(),
            Response::Busy {
                scope: BusyScope::Graph(0),
                ..
            }
        ));
        let stats = client.stats().unwrap();
        assert_eq!(stats.busy_rejections, 2);
        handle.stop();
    }

    #[test]
    fn tune_installs_a_plan_and_lists_it() {
        let handle = tiny_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        let before = client.list_graphs().unwrap();
        assert!(before[0]
            .plans
            .iter()
            .all(|p| p.origin == crate::protocol::WirePlanOrigin::Heuristic));
        let outcome = client.tune_graph(0, QueryOp::Sssp, 4).unwrap();
        assert_eq!(outcome.graph, 0);
        assert_eq!(outcome.plan.algo, QueryOp::Sssp);
        assert!(outcome.trials_run >= 1 && outcome.trials_run <= 4);
        let after = client.list_graphs().unwrap();
        let plan = after[0].plan_for(QueryOp::Sssp).unwrap();
        assert!(matches!(
            plan.origin,
            crate::protocol::WirePlanOrigin::Tuned { .. }
        ));
        assert_eq!(*plan, outcome.plan);
        let stats = client.stats().unwrap();
        assert_eq!(stats.tune_runs, 1);
        handle.stop();
    }

    #[test]
    fn tune_rejects_ppsp_and_unknown_graphs() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        match client
            .request(&Request::TuneGraph {
                graph: 0,
                algo: QueryOp::Ppsp,
                budget: 4,
            })
            .unwrap()
        {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("expected an error, got {other:?}"),
        }
        match client
            .request(&Request::TuneGraph {
                graph: 99,
                algo: QueryOp::Sssp,
                budget: 4,
            })
            .unwrap()
        {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownGraph),
            other => panic!("expected an error, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn outdated_clients_get_a_reply_shaped_in_their_version() {
        let handle = tiny_server(1);
        // v1: untyped error, then close.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut stream, &[1u8, 2u8]).unwrap(); // v1 Stats request
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(payload[0], 1, "reply speaks v1");
        assert_eq!(payload[1], 5, "reply is a v1 Error");
        let msg_len = u64::from_le_bytes(payload[2..10].try_into().unwrap()) as usize;
        let message = std::str::from_utf8(&payload[10..10 + msg_len]).unwrap();
        assert!(message.contains("version"), "{message}");
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));

        // v2: typed error with the unsupported-version kind, then close.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut stream, &[2u8, 2u8]).unwrap(); // v2 Stats request
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(payload[0], 2, "reply speaks v2");
        assert_eq!(payload[1], 5, "reply is a v2 Error");
        assert_eq!(payload[2], 4, "kind byte is unsupported-version");
        let msg_len = u64::from_le_bytes(payload[3..11].try_into().unwrap()) as usize;
        let message = std::str::from_utf8(&payload[11..11 + msg_len]).unwrap();
        assert!(message.contains("version 2"), "{message}");
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));

        // v3: same typed shape as v2, then close.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut stream, &[3u8, 2u8]).unwrap(); // v3 Stats request
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(payload[0], 3, "reply speaks v3");
        assert_eq!(payload[1], 5, "reply is a v3 Error");
        assert_eq!(payload[2], 4, "kind byte is unsupported-version");
        let msg_len = u64::from_le_bytes(payload[3..11].try_into().unwrap()) as usize;
        let message = std::str::from_utf8(&payload[11..11 + msg_len]).unwrap();
        assert!(message.contains("version 3"), "{message}");
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
        handle.stop();
    }

    #[test]
    fn malformed_frames_get_an_error_and_do_not_kill_the_connection() {
        let handle = tiny_server(1);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Version 200 is "newer than us", answered in-band with the current
        // version.
        write_frame(&mut stream, &[200u8, 9, 9]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::UnsupportedVersion,
                ..
            }
        ));
        // Version 0 was never spoken: in-band unsupported-version, current
        // shape, connection stays up.
        write_frame(&mut stream, &[0u8, 2u8]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::UnsupportedVersion,
                ..
            }
        ));
        // A malformed current-version payload is BadRequest, and the
        // connection lives.
        write_frame(&mut stream, &[PROTOCOL_VERSION, 99]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        write_frame(&mut stream, &Request::Stats.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Stats(_)
        ));
        handle.stop();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let handle = tiny_server(1);
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join(); // returns only because the client-side shutdown landed
                       // New connections are refused once the listener is gone.
        assert!(
            Client::connect(addr).is_err() || {
                // A race can leave the OS accept queue briefly alive; a request
                // against it must fail.
                let mut c = Client::connect(addr).unwrap();
                c.stats().is_err()
            }
        );
    }

    #[test]
    fn stop_returns_even_under_continuous_traffic() {
        // Regression: the dispatcher must observe shutdown even when a
        // client streams queries with sub-timeout gaps (it previously only
        // checked the flag on the idle-timeout branch).
        let handle = tiny_server(2);
        let addr = handle.addr();
        let spammer = std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(addr) else {
                return;
            };
            // Hammer until the server goes away (each is_ok() includes the
            // in-band shutting-down error; the loop ends when the
            // connection itself closes).
            while client.query(Query::ppsp(0, 63)).is_ok() {}
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        handle.stop(); // hangs forever if the dispatcher misses the flag
        let _ = spammer.join();
    }

    #[test]
    fn pending_reservations_release_after_each_request() {
        let graph = GraphGen::road_grid(6, 6).seed(2).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                pending_budget: 4,
                graph_pending_budget: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        // Many budget-filling batches in sequence: if reservations leaked
        // (global or per-graph), the second one would already be Busy.
        for round in 0..5 {
            let batch: Vec<Query> = (0..4).map(|i| Query::ppsp(0, i)).collect();
            let responses = client.batch(batch).unwrap();
            assert_eq!(responses.len(), 4, "round {round}");
            assert!(
                responses
                    .iter()
                    .all(|r| matches!(r, Response::Distance { .. })),
                "round {round}: {responses:?}"
            );
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.busy_rejections, 0);
        handle.stop();
    }

    #[test]
    fn dist_vec_fits_tracks_the_frame_cap() {
        use crate::protocol::MAX_FRAME_LEN;
        assert!(dist_vec_fits(0));
        assert!(dist_vec_fits(1 << 20)); // ~8 MiB of distances
        assert!(!dist_vec_fits(MAX_FRAME_LEN / 8)); // envelope pushes it over
        assert!(!dist_vec_fits(usize::MAX)); // no overflow
    }

    #[test]
    fn fmt_distance_marks_unreachable() {
        assert_eq!(fmt_distance(12), "12");
        assert_eq!(fmt_distance(UNREACHABLE), "-");
    }

    #[test]
    fn expired_deadlines_drop_queries_before_execution() {
        // One thread, a grid big enough that each SSSP takes well over 1ms:
        // by the time the dispatcher works through the leading full-vector
        // queries, the trailing 1ms-deadline query has long expired and
        // must be dropped *without executing* (ISSUE 7 acceptance).
        let graph = GraphGen::road_grid(200, 200).seed(3).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        let batch = vec![
            Query::sssp(0),
            Query::sssp(1),
            Query::sssp(2),
            Query::sssp(3).with_deadline(1),
        ];
        let responses = client.batch(batch).unwrap();
        for resp in &responses[..3] {
            assert!(matches!(resp, Response::DistVec(_)), "{resp:?}");
        }
        match &responses[3] {
            Response::Error { kind, message } => {
                assert_eq!(*kind, ErrorKind::Timeout, "{message}");
            }
            other => panic!("expected a timeout error, got {other:?}"),
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.full_queries, 3, "the timed-out query never executed");
        handle.stop();
    }

    #[test]
    fn deadlines_generous_enough_do_not_fire() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client.query(Query::sssp(0).with_deadline(60_000)).unwrap();
        assert!(matches!(resp, Response::DistVec(_)), "{resp:?}");
        let stats = client.stats().unwrap();
        assert_eq!(stats.timeouts, 0);
        handle.stop();
    }

    #[test]
    fn connections_over_the_cap_get_a_typed_refusal() {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut first = Client::connect(handle.addr()).unwrap();
        assert!(first.stats().is_ok(), "the first connection is served");
        // The second connection is over the cap: one overloaded frame,
        // then the socket closes — no handler thread was spawned for it.
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        let payload = read_frame(&mut second).unwrap().unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Overloaded, "{message}");
                assert!(message.contains("connection limit"), "{message}");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        assert!(matches!(read_frame(&mut second), Ok(None) | Err(_)));
        // The surviving connection keeps serving and saw the refusal.
        let stats = first.stats().unwrap();
        assert_eq!(stats.rejected_connections, 1);
        handle.stop();
    }

    #[test]
    fn slow_loris_partial_frames_are_dropped_but_idle_connections_survive() {
        use std::io::{Read, Write};
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                io_timeout_ms: 120,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        // Idle well past the io timeout: the connection must survive (an
        // idle read timeout is not an error).
        let mut client = Client::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert!(client.stats().is_ok(), "idle connections stay usable");
        // Half a length prefix, then silence: the slow-loris shape. The
        // server must close the connection within its io timeout instead
        // of wedging the handler thread.
        let mut loris = TcpStream::connect(handle.addr()).unwrap();
        loris.write_all(&[7u8, 0]).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        match loris.read(&mut buf) {
            Ok(0) | Err(_) => {} // closed (or reset) — both are a drop
            Ok(n) => panic!("server wrote {n} bytes to a slow-loris peer"),
        }
        // And the server still serves others afterwards.
        assert!(client.stats().is_ok());
        handle.stop();
    }

    #[test]
    fn retry_jitter_stays_in_band_and_varies() {
        let state = AtomicU64::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let v = jitter_retry_ms(1_000, &state);
            assert!((750..=1_250).contains(&v), "{v} outside ±25% of 1000");
            seen.insert(v);
        }
        assert!(seen.len() > 10, "jitter must actually vary, got {seen:?}");
        // The busy-path clamp tops out at 2000ms, so jittered hints stay
        // within the documented [1, 2500] band; zero floors at 1.
        for _ in 0..64 {
            assert!(jitter_retry_ms(2_000, &state) <= 2_500);
        }
        assert_eq!(jitter_retry_ms(0, &state), 1);
    }

    #[test]
    fn graceful_drain_answers_in_flight_work_and_flushes_the_manifest() {
        let dir = std::env::temp_dir().join(format!("priograph-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("manifest.json");
        let _ = std::fs::remove_file(&manifest);
        let snap = dir.join("extra.snap");
        let extra = GraphGen::road_grid(6, 6).seed(5).build();
        priograph_graph::GraphSnapshot::write(&extra, &snap).unwrap();

        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                manifest: Some(manifest.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        client.load_graph("extra", snap.to_str().unwrap()).unwrap();
        // A batch in flight while the drain fires: every reply must still
        // arrive (answered, or typed shutting-down if abandoned) — no
        // hangs, no dead sockets mid-response.
        let worker = std::thread::spawn(move || {
            let mut c = Client::connect(addr).ok()?;
            let batch: Vec<Query> = (0..64).map(|i| Query::ppsp(0, i % 64)).collect();
            c.batch(batch).ok()
        });
        std::thread::sleep(Duration::from_millis(30));
        handle.drain();
        if let Ok(Some(responses)) = worker.join().map(Ok::<_, ()>).unwrap() {
            assert_eq!(responses.len(), 64);
            for resp in &responses {
                assert!(
                    matches!(resp, Response::Distance { .. } | Response::Error { .. }),
                    "{resp:?}"
                );
            }
        }
        // The manifest was flushed by the drain and restores the
        // wire-loaded graph on restart.
        assert!(manifest.exists(), "drain must flush the manifest");
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                manifest: Some(manifest.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        let graphs = client.list_graphs().unwrap();
        assert!(
            graphs.iter().any(|g| g.name == "extra"),
            "restart on the drained manifest must restore the graph: {graphs:?}"
        );
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_shutdown_drains_instead_of_dropping_queued_work() {
        // After a Shutdown request lands, new requests on other
        // connections get a typed shutting-down refusal (not a dead
        // socket) until the drain completes.
        let handle = tiny_server(1);
        let addr = handle.addr();
        let mut other = Client::connect(addr).unwrap();
        assert!(other.stats().is_ok());
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        // The draining server answers the in-band refusal or has already
        // closed the connection — either way nothing hangs.
        assert!(
            other.stats().is_err(),
            "draining server must not serve new requests"
        );
        handle.join();
    }

    #[test]
    fn stats_v2_reports_phases_per_graph_series_and_engine_profile() {
        let handle = tiny_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut batch: Vec<Query> = (0..12).map(|i| Query::ppsp(0, (i * 5) % 64)).collect();
        batch.push(Query::sssp(0));
        batch.push(Query::sssp(7));
        let started = Instant::now();
        let responses = client.batch(batch).unwrap();
        assert_eq!(responses.len(), 14);

        let stats = client.stats_v2().unwrap();
        // The wall clock closes only after the stats round trip: the
        // spans it reports were recorded before the stats snapshot was
        // taken (count == 14 below), so this window strictly contains
        // every span even if the dispatcher is descheduled between the
        // reply handoff and its `responded` timestamp.
        let client_us = started.elapsed().as_micros() as u64;
        assert_eq!(stats.counter("queries"), Some(14));
        let total = stats.series("phase.total").expect("phase.total series");
        assert_eq!(total.count, 14);
        // Percentiles are monotone...
        assert!(total.p50_us <= total.p90_us);
        assert!(total.p90_us <= total.p99_us);
        assert!(total.p99_us <= total.p999_us);
        assert!(total.p999_us <= total.max_us);
        // ...and every phase folds into the total.
        for phase in ["queued", "planned", "executed", "responded"] {
            let s = stats.series(&format!("phase.{phase}")).unwrap();
            assert_eq!(s.count, 14, "phase.{phase}");
            assert!(s.max_us <= total.max_us + 1, "phase.{phase} exceeds total");
        }
        // Per-(graph, op) breakdown keyed by catalog id.
        assert_eq!(stats.series("graph.0.ppsp.total").unwrap().count, 12);
        assert_eq!(stats.series("graph.0.sssp.total").unwrap().count, 2);
        assert!(stats.series("graph.0.kcore.total").is_none());
        // Acceptance: no server-side total can exceed the loopback
        // client's wall clock for batch + stats round trips (every span
        // is a strict sub-interval of that window), modulo one histogram
        // bucket of relative error.
        assert!(
            total.max_us <= priograph_telemetry::bucket_ceiling(client_us),
            "server total {}us exceeds client-measured {client_us}us",
            total.max_us
        );
        // The full-vector queries ran on the observed engines.
        assert!(stats.counter("engine.rounds").unwrap_or(0) > 0);
        assert!(stats.counter("engine.relaxations").unwrap_or(0) > 0);
        assert!(stats.series("engine.frontier").unwrap().count > 0);
        handle.stop();
    }

    #[test]
    fn stats_v2_counts_each_error_kind_exactly_once() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        // One bad-vertex refusal (dispatcher) and one unknown-graph
        // refusal (admission) — different stages, one choke point.
        let resp = client.query(Query::ppsp(0, 9_999)).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        let resp = client.query(Query::ppsp(0, 1).on_graph(42)).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        let stats = client.stats_v2().unwrap();
        assert_eq!(stats.counter("errors.bad-vertex"), Some(1));
        assert_eq!(stats.counter("errors.unknown-graph"), Some(1));
        assert_eq!(stats.counter("errors"), Some(2), "legacy total agrees");
        // Every kind is reported by name even while zero, so dashboards
        // can rely on the series existing.
        for kind in ErrorKind::ALL {
            assert!(
                stats.counter(&format!("errors.{kind}")).is_some(),
                "missing counter for {kind}"
            );
        }
        handle.stop();
    }

    #[test]
    fn timeouts_count_once_across_legacy_and_kind_counters() {
        // Same shape as expired_deadlines_drop_queries_before_execution:
        // leading SSSPs consume the trailing query's 1ms budget.
        let graph = GraphGen::road_grid(120, 120).seed(3).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        let responses = client
            .batch(vec![
                Query::sssp(0),
                Query::sssp(1),
                Query::sssp(2).with_deadline(1),
            ])
            .unwrap();
        assert!(
            matches!(
                &responses[2],
                Response::Error {
                    kind: ErrorKind::Timeout,
                    ..
                }
            ),
            "{:?}",
            responses[2]
        );
        let stats = client.stats_v2().unwrap();
        assert_eq!(stats.counter("timeouts"), Some(1));
        assert_eq!(stats.counter("errors.timeout"), Some(1));
        assert_eq!(stats.counter("errors"), Some(1), "counted exactly once");
        // The shed query still gets a span (its exec phases are zero).
        assert_eq!(stats.series("graph.0.sssp.total").unwrap().count, 3);
        handle.stop();
    }

    #[test]
    fn drain_refusals_move_the_drain_and_shutting_down_counters() {
        let handle = tiny_server(1);
        let addr = handle.addr();
        let mut other = Client::connect(addr).unwrap();
        assert!(other.stats().is_ok());
        // Let `other`'s handler park back in its read loop. A handler also
        // re-checks the drain flag right after writing a response and closes
        // the socket if it is up — without this pause, the shutdown below
        // can land in that window and `other` gets a hard close (no in-band
        // refusal, nothing counted) instead of the refusal this test is
        // about.
        std::thread::sleep(Duration::from_millis(200));
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        assert!(other.stats().is_err(), "drain window refuses new work");
        // The server is gone from the wire; read the counters directly.
        let shared = Arc::clone(&handle.shared);
        handle.join();
        assert_eq!(
            shared.telemetry.drain_rejections(),
            1,
            "the drain-window refusal must be counted (it used to vanish)"
        );
        assert!(shared.telemetry.error_kind_count(ErrorKind::ShuttingDown) >= 1);
    }

    #[test]
    fn overload_refusals_count_in_kind_and_connection_counters() {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut first = Client::connect(handle.addr()).unwrap();
        assert!(first.stats().is_ok());
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        let payload = read_frame(&mut second).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::Overloaded,
                ..
            }
        ));
        drop(second);
        let stats = first.stats_v2().unwrap();
        assert_eq!(stats.counter("rejected_connections"), Some(1));
        assert_eq!(stats.counter("errors.overloaded"), Some(1));
        handle.stop();
    }

    #[test]
    fn slow_query_ring_retains_the_worst_queries_with_plans() {
        let handle = tiny_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        // A full SSSP dominates point queries, so it must occupy the ring.
        let _ = client
            .batch(vec![Query::ppsp(0, 63), Query::sssp(0), Query::ppsp(0, 9)])
            .unwrap();
        let shared = Arc::clone(&handle.shared);
        handle.stop();
        let slow = shared.telemetry.slow_queries();
        assert!(!slow.is_empty());
        assert_eq!(slow[0].graph, 0);
        assert!(
            slow.iter().any(|q| q.op == QueryOp::Sssp),
            "the SSSP must be retained: {slow:?}"
        );
        for q in &slow {
            assert!(!q.plan.is_empty());
            assert!(q.span.total_us() >= slow[slow.len() - 1].span.total_us());
        }
        let ppsp = slow.iter().find(|q| q.op == QueryOp::Ppsp);
        if let Some(q) = ppsp {
            assert_eq!(q.plan, "point-serial");
        }
    }
}
