//! The graph server: a resident [`CsrGraph`], a serving [`Pool`], and a
//! batching dispatcher behind a std-TCP accept loop.
//!
//! # Architecture
//!
//! ```text
//! client conns ──► connection threads ──► job queue ──► dispatcher thread
//!   (frames)         (decode/reply)       (mpsc)        (owns the Pool)
//! ```
//!
//! Every connection gets a plain OS thread (no async runtime — see
//! `vendor/README.md` for why), but **no connection thread ever touches the
//! pool**: [`Pool::broadcast`] assumes a single orchestrator, so all query
//! execution funnels through one dispatcher thread that owns it. That
//! funnel is also where batching happens — the dispatcher drains every
//! query that arrived while the previous round ran and serves them as one
//! group: point queries fan out across the pool's per-worker
//! [`QueryEngine`](crate::batch::QueryEngine)s (inter-query parallelism,
//! zero steady-state allocation), full-vector queries run one at a time on
//! the parallel bucket engines (intra-query parallelism).

use crate::batch::{BatchRunner, PointAnswer};
use crate::protocol::{
    read_frame, write_frame, Query, QueryOp, Request, Response, ServerStats, WireError,
    WireStrategy,
};
use priograph_algorithms::{kcore, sssp, wbfs, UNREACHABLE};
use priograph_core::schedule::Schedule;
use priograph_graph::CsrGraph;
use priograph_parallel::Pool;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// How a [`serve`]d server is configured.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads in the serving pool.
    pub threads: usize,
    /// Schedule used when a query asks for the server default.
    pub default_schedule: Schedule,
    /// Maximum queries grouped into one dispatcher round.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            default_schedule: Schedule::lazy(32),
            max_batch: 256,
        }
    }
}

/// Counters shared between connections, the dispatcher, and stats replies.
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batch_rounds: AtomicU64,
    point_queries: AtomicU64,
    full_queries: AtomicU64,
    errors: AtomicU64,
}

/// State shared by every thread of one server instance.
#[derive(Debug)]
struct Shared {
    graph: Arc<CsrGraph>,
    /// Symmetrized view for k-core, computed on first use (the resident
    /// graph itself is reused when it is already symmetric).
    sym: OnceLock<Arc<CsrGraph>>,
    default_schedule: Schedule,
    threads: usize,
    counters: Counters,
    shutdown: AtomicBool,
}

impl Shared {
    fn sym_graph(&self) -> Arc<CsrGraph> {
        self.sym
            .get_or_init(|| {
                if self.graph.is_symmetric() {
                    Arc::clone(&self.graph)
                } else {
                    Arc::new(self.graph.symmetrize())
                }
            })
            .clone()
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            num_vertices: self.graph.num_vertices() as u64,
            num_edges: self.graph.num_edges() as u64,
            threads: self.threads as u64,
            queries: self.counters.queries.load(Ordering::Relaxed),
            batch_rounds: self.counters.batch_rounds.load(Ordering::Relaxed),
            point_queries: self.counters.point_queries.load(Ordering::Relaxed),
            full_queries: self.counters.full_queries.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }
}

/// One query in flight from a connection thread to the dispatcher.
struct Job {
    query: Query,
    reply: mpsc::Sender<Response>,
}

/// Handle to a running server.
///
/// Dropping the handle stops the server; [`ServerHandle::stop`] does so
/// explicitly, [`ServerHandle::join`] instead blocks until a client sends
/// [`Request::Shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: no new connections are accepted, in-flight
    /// queries finish, and both service threads are joined.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Blocks until the server shuts down (via [`Request::Shutdown`] or
    /// [`ServerHandle::stop`] from another handle-owning thread).
    pub fn join(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }

    fn stop_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Kick the blocking accept() so the listener observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.listener.is_some() || self.dispatcher.is_some() {
            self.stop_inner();
        }
    }
}

/// Starts serving `graph` per `config`, returning once the listen socket is
/// bound.
///
/// # Errors
///
/// Propagates socket bind/spawn failures.
pub fn serve(graph: CsrGraph, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        graph: Arc::new(graph),
        sym: OnceLock::new(),
        default_schedule: config.default_schedule.clone(),
        threads: config.threads.max(1),
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
    });

    let (tx, rx) = mpsc::channel::<Job>();
    let dispatcher = {
        let shared = Arc::clone(&shared);
        let threads = shared.threads;
        let max_batch = config.max_batch.max(1);
        std::thread::Builder::new()
            .name("priograph-dispatch".to_string())
            .spawn(move || dispatcher_loop(&shared, &rx, threads, max_batch))?
    };
    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("priograph-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared, addr, &tx))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_thread),
        dispatcher: Some(dispatcher),
    })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    addr: SocketAddr,
    tx: &mpsc::Sender<Job>,
) {
    // The master job sender lives exactly as long as the accept loop; when
    // it drops (plus every connection's clone), the dispatcher drains and
    // exits.
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // accept can fail persistently (e.g. fd exhaustion under a
                // connection flood) — and then the stop() kick-connect fails
                // too, so the shutdown flag must be checked here, and the
                // retry must back off instead of busy-spinning.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        let _ = std::thread::Builder::new()
            .name("priograph-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &shared, addr, &tx);
            });
    }
}

/// Serves one client connection; returns on disconnect or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    addr: SocketAddr,
    tx: &mpsc::Sender<Job>,
) -> Result<(), WireError> {
    let _ = stream.set_nodelay(true);
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Ok(()); // clean disconnect between frames
        };
        let response = match Request::decode(&payload) {
            Ok(Request::Stats) => Response::Stats(shared.stats()),
            Ok(Request::Shutdown) => {
                write_frame(&mut stream, &Response::Bye.encode())?;
                shared.shutdown.store(true, Ordering::Release);
                // Kick the accept loop awake so it observes the flag.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            Ok(Request::Query(query)) => submit(tx, query),
            Ok(Request::Batch(queries)) => {
                // Submit every query before collecting any reply, so the
                // whole batch is visible to one dispatcher round.
                let pending: Vec<mpsc::Receiver<Response>> =
                    queries.iter().map(|&q| submit_async(tx, q)).collect();
                Response::Batch(pending.into_iter().map(collect_reply).collect())
            }
            // Framing survives a malformed payload, so report and carry on.
            Err(e) => Response::Error(e.to_string()),
        };
        let mut encoded = response.encode();
        if encoded.len() > crate::protocol::MAX_FRAME_LEN {
            // Never kill the connection over an oversized answer (a batch
            // of full-vector queries can cross the cap even though each
            // fits): degrade to an in-band error the client can act on.
            encoded = Response::Error(format!(
                "response of {} bytes exceeds the {} byte frame cap; \
                 split the batch or use point queries",
                encoded.len(),
                crate::protocol::MAX_FRAME_LEN
            ))
            .encode();
        }
        write_frame(&mut stream, &encoded)?;
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(()); // stop serving this connection once shutdown began
        }
    }
}

/// Whether a full distance/coreness vector for `n` vertices fits one
/// frame (with generous envelope slack). Beyond this, full-vector queries
/// get an in-band error up front instead of a dead connection after the
/// engine has already done the work.
fn dist_vec_fits(n: usize) -> bool {
    n.saturating_mul(8).saturating_add(4096) <= crate::protocol::MAX_FRAME_LEN
}

fn submit_async(tx: &mpsc::Sender<Job>, query: Query) -> mpsc::Receiver<Response> {
    let (reply_tx, reply_rx) = mpsc::channel();
    let _ = tx.send(Job {
        query,
        reply: reply_tx,
    });
    reply_rx
}

fn collect_reply(rx: mpsc::Receiver<Response>) -> Response {
    rx.recv()
        .unwrap_or_else(|_| Response::Error("server is shutting down".to_string()))
}

fn submit(tx: &mpsc::Sender<Job>, query: Query) -> Response {
    collect_reply(submit_async(tx, query))
}

/// The dispatcher: the single owner of the pool and the batching point.
fn dispatcher_loop(shared: &Shared, rx: &mpsc::Receiver<Job>, threads: usize, max_batch: usize) {
    let pool = Pool::new(threads);
    let mut runner = BatchRunner::new();
    // Reused round state (cleared, never dropped, between rounds).
    let mut jobs: Vec<Job> = Vec::new();
    let mut point_pairs: Vec<(u32, u32)> = Vec::new();
    let mut point_slots: Vec<usize> = Vec::new();
    let mut answers: Vec<PointAnswer> = Vec::new();
    let mut replies: Vec<Option<Response>> = Vec::new();

    loop {
        // The shutdown check must come before processing, not only on the
        // idle timeout: a client streaming queries with sub-timeout gaps
        // would otherwise keep the dispatcher in the Ok(job) branch forever
        // and wedge ServerHandle::stop(). Dropped jobs resolve to a
        // shutting-down error reply on the connection side.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Poll-with-timeout instead of a bare recv: connections may outlive
        // a [`ServerHandle::stop`], and the dispatcher must still exit.
        let first = match rx.recv_timeout(std::time::Duration::from_millis(25)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        jobs.clear();
        jobs.push(first);
        while jobs.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        shared.counters.batch_rounds.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .queries
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);

        // Partition: point queries fan out together, the rest run after.
        let n = shared.graph.num_vertices();
        point_pairs.clear();
        point_slots.clear();
        replies.clear();
        replies.resize_with(jobs.len(), || None);
        for (i, job) in jobs.iter().enumerate() {
            let q = &job.query;
            match q.op {
                QueryOp::Ppsp => {
                    if (q.source as usize) < n && (q.target as usize) < n {
                        point_slots.push(i);
                        point_pairs.push((q.source, q.target));
                    } else {
                        replies[i] = Some(vertex_error(q, n));
                    }
                }
                QueryOp::Sssp | QueryOp::Wbfs if (q.source as usize) >= n => {
                    replies[i] = Some(vertex_error(q, n));
                }
                _ => {}
            }
        }

        if !point_pairs.is_empty() {
            shared
                .counters
                .point_queries
                .fetch_add(point_pairs.len() as u64, Ordering::Relaxed);
            runner.run(&pool, &shared.graph, &point_pairs, &mut answers);
            for (slot, answer) in point_slots.iter().zip(&answers) {
                replies[*slot] = Some(Response::Distance {
                    distance: answer.distance,
                    relaxations: answer.relaxations,
                });
            }
        }

        for (i, job) in jobs.iter().enumerate() {
            if replies[i].is_none() {
                shared.counters.full_queries.fetch_add(1, Ordering::Relaxed);
                replies[i] = Some(run_full_query(shared, &pool, &job.query));
            }
        }

        for (job, reply) in jobs.drain(..).zip(replies.drain(..)) {
            let reply = reply.expect("every job got a reply");
            if matches!(reply, Response::Error(_)) {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            let _ = job.reply.send(reply);
        }
    }
}

fn vertex_error(q: &Query, n: usize) -> Response {
    Response::Error(format!(
        "vertex out of range (source {}, target {}, graph has {n})",
        q.source, q.target
    ))
}

/// Runs one full-vector query on the parallel engines.
fn run_full_query(shared: &Shared, pool: &Pool, query: &Query) -> Response {
    if !dist_vec_fits(shared.graph.num_vertices()) {
        return Response::Error(format!(
            "full-vector responses for {} vertices exceed the wire frame cap; \
             use point (ppsp) queries against this graph",
            shared.graph.num_vertices()
        ));
    }
    let schedule = query.schedule.resolve(&shared.default_schedule);
    match query.op {
        QueryOp::Ppsp => unreachable!("point queries are batched"),
        QueryOp::Sssp => {
            match sssp::delta_stepping_on(pool, &shared.graph, query.source, &schedule) {
                Ok(r) => Response::DistVec(r.dist),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        QueryOp::Wbfs => match wbfs::wbfs_on(pool, &shared.graph, query.source, &schedule) {
            Ok(r) => Response::DistVec(r.dist),
            Err(e) => Response::Error(e.to_string()),
        },
        QueryOp::KCore => {
            // "Server default" means the k-core-legal schedule, not the
            // SSSP-tuned one (whose Δ would be rejected by validation).
            let schedule = if query.schedule.strategy == WireStrategy::ServerDefault {
                Schedule::lazy_constant_sum()
            } else {
                schedule
            };
            let sym = shared.sym_graph();
            match kcore::kcore_on(pool, &sym, &schedule) {
                Ok(r) => Response::Coreness(r.coreness),
                Err(e) => Response::Error(e.to_string()),
            }
        }
    }
}

/// Formats a distance for human-facing client output (`"-"` when the
/// vertex is unreachable).
pub fn fmt_distance(d: i64) -> String {
    if d >= UNREACHABLE {
        "-".to_string()
    } else {
        d.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use priograph_graph::gen::GraphGen;

    fn tiny_server(threads: usize) -> ServerHandle {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        serve(
            graph,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    #[test]
    fn stats_reflect_the_resident_graph() {
        let handle = tiny_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.num_vertices, 64);
        assert!(stats.num_edges > 0);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.queries, 0);
        handle.stop();
    }

    #[test]
    fn out_of_range_queries_error_in_band() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client
            .request(&Request::Query(Query::ppsp(0, 9999)))
            .unwrap();
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        let resp = client.request(&Request::Query(Query::sssp(9999))).unwrap();
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        let stats = client.stats().unwrap();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.queries, 2);
        handle.stop();
    }

    #[test]
    fn malformed_frames_get_an_error_and_do_not_kill_the_connection() {
        let handle = tiny_server(1);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut stream, b"garbage").unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error(_)
        ));
        // The connection still serves well-formed requests afterwards.
        write_frame(&mut stream, &Request::Stats.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Stats(_)
        ));
        handle.stop();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let handle = tiny_server(1);
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join(); // returns only because the client-side shutdown landed
                       // New connections are refused once the listener is gone.
        assert!(
            Client::connect(addr).is_err() || {
                // A race can leave the OS accept queue briefly alive; a request
                // against it must fail.
                let mut c = Client::connect(addr).unwrap();
                c.stats().is_err()
            }
        );
    }

    #[test]
    fn stop_returns_even_under_continuous_traffic() {
        // Regression: the dispatcher must observe shutdown even when a
        // client streams queries with sub-timeout gaps (it previously only
        // checked the flag on the idle-timeout branch).
        let handle = tiny_server(2);
        let addr = handle.addr();
        let spammer = std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(addr) else {
                return;
            };
            // Hammer until the server goes away (each is_ok() includes the
            // in-band shutting-down error; the loop ends when the
            // connection itself closes).
            while client.query(Query::ppsp(0, 63)).is_ok() {}
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        handle.stop(); // hangs forever if the dispatcher misses the flag
        let _ = spammer.join();
    }

    #[test]
    fn dist_vec_fits_tracks_the_frame_cap() {
        use crate::protocol::MAX_FRAME_LEN;
        assert!(dist_vec_fits(0));
        assert!(dist_vec_fits(1 << 20)); // ~8 MiB of distances
        assert!(!dist_vec_fits(MAX_FRAME_LEN / 8)); // envelope pushes it over
        assert!(!dist_vec_fits(usize::MAX)); // no overflow
    }

    #[test]
    fn fmt_distance_marks_unreachable() {
        assert_eq!(fmt_distance(12), "12");
        assert_eq!(fmt_distance(UNREACHABLE), "-");
    }
}
