//! The graph server: a catalog of resident [`CsrGraph`]s, a serving
//! [`Pool`], and a batching dispatcher behind a std-TCP accept loop.
//!
//! # Architecture (full guide: `docs/ARCHITECTURE.md`)
//!
//! ```text
//! client conns ──► connection threads ──► job queue ──► dispatcher thread
//!   (frames)       (decode/admit/reply)    (mpsc)     (owns Pool + engines)
//!                        │
//!                        └─► catalog (LoadGraph / UnloadGraph / ListGraphs)
//! ```
//!
//! Every connection gets a plain OS thread (no async runtime — see
//! `vendor/README.md` for why), but **no connection thread ever touches the
//! pool**: [`Pool::broadcast`] assumes a single orchestrator, so all query
//! execution funnels through one dispatcher thread that owns it. That
//! funnel is also where batching happens — the dispatcher drains every
//! query that arrived while the previous round ran and serves them as one
//! group, per graph: point queries fan out across the pool's per-worker
//! [`QueryEngine`](crate::batch::QueryEngine)s (inter-query parallelism,
//! zero steady-state allocation, one engine set per resident graph),
//! full-vector queries run one at a time on the parallel bucket engines
//! (intra-query parallelism).
//!
//! Admission control is **connection-level backpressure**: each request
//! must reserve its query count against the server-wide pending budget
//! ([`ServerConfig::pending_budget`]) before anything is enqueued. A
//! request that does not fit is answered with [`Response::Busy`] — nothing
//! executes, nothing queues without bound — and the reservation is released
//! when the request's replies have been collected.

use crate::batch::{BatchRunner, PointAnswer};
use crate::catalog::{Catalog, CatalogError, GraphEntry};
use crate::protocol::{
    legacy_v1_error_payload, read_frame, write_frame, ErrorKind, GraphId, Query, QueryOp, Request,
    Response, ServerStats, WireError, WireStrategy, PROTOCOL_VERSION,
};
use priograph_algorithms::{kcore, sssp, wbfs, UNREACHABLE};
use priograph_core::schedule::Schedule;
use priograph_graph::{CsrGraph, LoadMode};
use priograph_parallel::Pool;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a [`serve`]d server is configured.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads in the serving pool.
    pub threads: usize,
    /// Schedule used when a query asks for the server default.
    pub default_schedule: Schedule,
    /// Maximum queries grouped into one dispatcher round.
    pub max_batch: usize,
    /// Server-wide bound on queries admitted but not yet answered. A
    /// request whose query count does not fit is refused with
    /// [`Response::Busy`] instead of queueing without bound; a single
    /// request larger than the whole budget can never be admitted (the
    /// `Busy` reply tells the client to split it).
    pub pending_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            default_schedule: Schedule::lazy(32),
            max_batch: 256,
            pending_budget: 4096,
        }
    }
}

/// Counters shared between connections, the dispatcher, and stats replies.
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batch_rounds: AtomicU64,
    point_queries: AtomicU64,
    full_queries: AtomicU64,
    errors: AtomicU64,
    busy_rejections: AtomicU64,
}

/// State shared by every thread of one server instance.
#[derive(Debug)]
struct Shared {
    catalog: Catalog,
    default_schedule: Schedule,
    threads: usize,
    counters: Counters,
    /// Queries admitted but not yet answered, bounded by `pending_budget`.
    pending: AtomicU64,
    pending_budget: u64,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let (num_vertices, num_edges) = match self.catalog.get(0) {
            Some(entry) => (
                entry.graph.num_vertices() as u64,
                entry.graph.num_edges() as u64,
            ),
            None => (0, 0),
        };
        ServerStats {
            num_vertices,
            num_edges,
            threads: self.threads as u64,
            queries: self.counters.queries.load(Ordering::Relaxed),
            batch_rounds: self.counters.batch_rounds.load(Ordering::Relaxed),
            point_queries: self.counters.point_queries.load(Ordering::Relaxed),
            full_queries: self.counters.full_queries.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            graphs: self.catalog.len() as u64,
            busy_rejections: self.counters.busy_rejections.load(Ordering::Relaxed),
        }
    }

    /// Reserves `count` pending-query slots, or reports (pending, budget)
    /// for the `Busy` reply. Release happens via [`PendingGuard`].
    fn try_reserve(self: &Arc<Self>, count: u64) -> Result<PendingGuard, (u64, u64)> {
        loop {
            let current = self.pending.load(Ordering::Acquire);
            let wanted = current.saturating_add(count);
            if wanted > self.pending_budget {
                self.counters
                    .busy_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Err((current, self.pending_budget));
            }
            if self
                .pending
                .compare_exchange(current, wanted, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(PendingGuard {
                    shared: Arc::clone(self),
                    count,
                });
            }
        }
    }
}

/// RAII release of a pending-budget reservation.
struct PendingGuard {
    shared: Arc<Shared>,
    count: u64,
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.shared.pending.fetch_sub(self.count, Ordering::AcqRel);
    }
}

/// One query in flight from a connection thread to the dispatcher, with its
/// graph resolved at submission (so an unload mid-flight cannot invalidate
/// it — the `Arc` keeps the graph alive).
struct Job {
    entry: Arc<GraphEntry>,
    query: Query,
    reply: mpsc::Sender<Response>,
}

/// Handle to a running server.
///
/// Dropping the handle stops the server; [`ServerHandle::stop`] does so
/// explicitly, [`ServerHandle::join`] instead blocks until a client sends
/// [`Request::Shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: no new connections are accepted, in-flight
    /// queries finish, and both service threads are joined.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Blocks until the server shuts down (via [`Request::Shutdown`] or
    /// [`ServerHandle::stop`] from another handle-owning thread).
    pub fn join(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }

    fn stop_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Kick the blocking accept() so the listener observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.listener.is_some() || self.dispatcher.is_some() {
            self.stop_inner();
        }
    }
}

/// Starts serving a single graph (catalog id 0, named `default`) per
/// `config`, returning once the listen socket is bound. More graphs can be
/// loaded over the wire (`LoadGraph`) afterwards; [`serve_named`] starts
/// with several.
///
/// # Errors
///
/// Propagates socket bind/spawn failures.
pub fn serve(graph: CsrGraph, config: ServerConfig) -> io::Result<ServerHandle> {
    serve_named(vec![("default".to_string(), graph)], config)
}

/// Starts serving `graphs` under catalog ids `0..n` (in order) with the
/// given names. Each graph's load mode is taken from how it is resident
/// (a [`SnapshotView`](priograph_graph::SnapshotView)-loaded graph reports
/// `mmap`).
///
/// # Errors
///
/// Propagates socket bind/spawn failures.
pub fn serve_named(
    graphs: Vec<(String, CsrGraph)>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let catalog = Catalog::new(
        graphs
            .into_iter()
            .map(|(name, graph)| {
                let mode = if graph.is_mapped() {
                    LoadMode::Mapped
                } else {
                    LoadMode::Owned
                };
                (name, graph, mode)
            })
            .collect(),
    );
    let shared = Arc::new(Shared {
        catalog,
        default_schedule: config.default_schedule.clone(),
        threads: config.threads.max(1),
        counters: Counters::default(),
        pending: AtomicU64::new(0),
        pending_budget: config.pending_budget.max(1) as u64,
        shutdown: AtomicBool::new(false),
    });

    let (tx, rx) = mpsc::channel::<Job>();
    let dispatcher = {
        let shared = Arc::clone(&shared);
        let threads = shared.threads;
        let max_batch = config.max_batch.max(1);
        std::thread::Builder::new()
            .name("priograph-dispatch".to_string())
            .spawn(move || dispatcher_loop(&shared, &rx, threads, max_batch))?
    };
    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("priograph-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared, addr, &tx))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_thread),
        dispatcher: Some(dispatcher),
    })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    addr: SocketAddr,
    tx: &mpsc::Sender<Job>,
) {
    // The master job sender lives exactly as long as the accept loop; when
    // it drops (plus every connection's clone), the dispatcher drains and
    // exits.
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // accept can fail persistently (e.g. fd exhaustion under a
                // connection flood) — and then the stop() kick-connect fails
                // too, so the shutdown flag must be checked here, and the
                // retry must back off instead of busy-spinning.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        let _ = std::thread::Builder::new()
            .name("priograph-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &shared, addr, &tx);
            });
    }
}

/// A per-query slot of an in-progress request: either already answered on
/// the connection thread (admission failures) or pending at the dispatcher.
enum Slot {
    Ready(Response),
    Pending(mpsc::Receiver<Response>),
}

impl Slot {
    fn collect(self) -> Response {
        match self {
            Slot::Ready(resp) => resp,
            Slot::Pending(rx) => rx.recv().unwrap_or_else(|_| {
                Response::error(ErrorKind::ShuttingDown, "server is shutting down")
            }),
        }
    }
}

/// Serves one client connection; returns on disconnect or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    addr: SocketAddr,
    tx: &mpsc::Sender<Job>,
) -> Result<(), WireError> {
    let _ = stream.set_nodelay(true);
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Ok(()); // clean disconnect between frames
        };
        let response = match Request::decode(&payload) {
            Ok(Request::Stats) => Response::Stats(shared.stats()),
            Ok(Request::Shutdown) => {
                write_frame(&mut stream, &Response::Bye.encode())?;
                shared.shutdown.store(true, Ordering::Release);
                // Kick the accept loop awake so it observes the flag.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            Ok(Request::Query(query)) => match shared.try_reserve(1) {
                Ok(guard) => {
                    let slot = submit(shared, tx, query);
                    let response = slot.collect();
                    drop(guard);
                    response
                }
                Err((pending, budget)) => Response::Busy { pending, budget },
            },
            Ok(Request::Batch(queries)) => match shared.try_reserve(queries.len() as u64) {
                Ok(guard) => {
                    // Submit every query before collecting any reply, so the
                    // whole batch is visible to one dispatcher round.
                    let slots: Vec<Slot> = queries.iter().map(|&q| submit(shared, tx, q)).collect();
                    let items = slots.into_iter().map(Slot::collect).collect();
                    drop(guard);
                    Response::Batch(items)
                }
                Err((pending, budget)) => Response::Busy { pending, budget },
            },
            Ok(Request::LoadGraph { name, path }) => load_graph(shared, &name, &path),
            Ok(Request::UnloadGraph { name }) => match shared.catalog.unload(&name) {
                Ok(_) => Response::Unloaded,
                Err(e) => Response::error(ErrorKind::UnknownGraph, e.to_string()),
            },
            Ok(Request::ListGraphs) => Response::GraphList(
                shared
                    .catalog
                    .list()
                    .iter()
                    .map(|entry| entry.info())
                    .collect(),
            ),
            // An old client cannot decode any v2 frame, so the version
            // mismatch gets a *v1-shaped* in-band error it can render, and
            // the connection closes (`docs/PROTOCOL.md` §Versioning).
            Err(WireError::VersionMismatch { got }) if got < PROTOCOL_VERSION => {
                write_frame(
                    &mut stream,
                    &legacy_v1_error_payload(&format!(
                        "protocol version {got} is no longer served; this server \
                         speaks version {PROTOCOL_VERSION} — upgrade the client"
                    )),
                )?;
                return Ok(());
            }
            Err(WireError::VersionMismatch { got }) => Response::error(
                ErrorKind::UnsupportedVersion,
                format!("client version {got} is newer than server version {PROTOCOL_VERSION}"),
            ),
            // Framing survives a malformed payload, so report and carry on.
            Err(e) => Response::error(ErrorKind::BadRequest, e.to_string()),
        };
        let mut encoded = response.encode();
        if encoded.len() > crate::protocol::MAX_FRAME_LEN {
            // Never kill the connection over an oversized answer (a batch
            // of full-vector queries can cross the cap even though each
            // fits): degrade to an in-band error the client can act on.
            encoded = Response::error(
                ErrorKind::TooLarge,
                format!(
                    "response of {} bytes exceeds the {} byte frame cap; \
                     split the batch or use point queries",
                    encoded.len(),
                    crate::protocol::MAX_FRAME_LEN
                ),
            )
            .encode();
        }
        write_frame(&mut stream, &encoded)?;
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(()); // stop serving this connection once shutdown began
        }
    }
}

fn load_graph(shared: &Shared, name: &str, path: &str) -> Response {
    if name.is_empty() {
        return Response::error(ErrorKind::BadRequest, "graph name must not be empty");
    }
    match shared.catalog.load(name, path) {
        Ok(entry) => Response::Loaded(entry.info()),
        Err(e @ CatalogError::NameTaken(_)) => {
            Response::error(ErrorKind::BadRequest, e.to_string())
        }
        Err(e) => Response::error(ErrorKind::LoadFailed, e.to_string()),
    }
}

/// Resolves the query's graph and enqueues it, or answers immediately when
/// the graph is unknown. Every query is counted exactly once.
fn submit(shared: &Shared, tx: &mpsc::Sender<Job>, query: Query) -> Slot {
    let Some(entry) = shared.catalog.get(query.graph) else {
        shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        return Slot::Ready(Response::error(
            ErrorKind::UnknownGraph,
            format!("no resident graph with id {}", query.graph),
        ));
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let _ = tx.send(Job {
        entry,
        query,
        reply: reply_tx,
    });
    Slot::Pending(reply_rx)
}

/// Whether a full distance/coreness vector for `n` vertices fits one
/// frame (with generous envelope slack). Beyond this, full-vector queries
/// get an in-band error up front instead of a dead connection after the
/// engine has already done the work.
fn dist_vec_fits(n: usize) -> bool {
    n.saturating_mul(8).saturating_add(4096) <= crate::protocol::MAX_FRAME_LEN
}

/// Per-graph point-query grouping within one dispatcher round.
#[derive(Default)]
struct PointGroup {
    pairs: Vec<(u32, u32)>,
    slots: Vec<usize>,
}

/// The dispatcher: the single owner of the pool and the batching point.
/// Engine state is **per graph** — each resident graph gets its own
/// [`BatchRunner`] whose per-worker engines stay sized to that graph, and
/// runners for evicted graphs are dropped at the end of the round.
fn dispatcher_loop(shared: &Shared, rx: &mpsc::Receiver<Job>, threads: usize, max_batch: usize) {
    let pool = Pool::new(threads);
    let mut runners: HashMap<GraphId, BatchRunner> = HashMap::new();
    // Reused round state (cleared, never dropped, between rounds).
    let mut jobs: Vec<Job> = Vec::new();
    let mut groups: HashMap<GraphId, PointGroup> = HashMap::new();
    let mut answers: Vec<PointAnswer> = Vec::new();
    let mut replies: Vec<Option<Response>> = Vec::new();

    loop {
        // The shutdown check must come before processing, not only on the
        // idle timeout: a client streaming queries with sub-timeout gaps
        // would otherwise keep the dispatcher in the Ok(job) branch forever
        // and wedge ServerHandle::stop(). Dropped jobs resolve to a
        // shutting-down error reply on the connection side.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Poll-with-timeout instead of a bare recv: connections may outlive
        // a [`ServerHandle::stop`], and the dispatcher must still exit.
        let first = match rx.recv_timeout(std::time::Duration::from_millis(25)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        jobs.clear();
        jobs.push(first);
        while jobs.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        shared.counters.batch_rounds.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .queries
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);

        // Partition: point queries fan out together per graph, the rest
        // run after.
        for group in groups.values_mut() {
            group.pairs.clear();
            group.slots.clear();
        }
        replies.clear();
        replies.resize_with(jobs.len(), || None);
        for (i, job) in jobs.iter().enumerate() {
            let q = &job.query;
            let n = job.entry.graph.num_vertices();
            match q.op {
                QueryOp::Ppsp => {
                    if (q.source as usize) < n && (q.target as usize) < n {
                        let group = groups.entry(job.entry.id).or_default();
                        group.slots.push(i);
                        group.pairs.push((q.source, q.target));
                    } else {
                        replies[i] = Some(vertex_error(q, n));
                    }
                }
                QueryOp::Sssp | QueryOp::Wbfs if (q.source as usize) >= n => {
                    replies[i] = Some(vertex_error(q, n));
                }
                _ => {}
            }
        }

        for (graph_id, group) in &groups {
            if group.pairs.is_empty() {
                continue;
            }
            // Same id ⇒ same entry: ids are never reused within a server.
            let entry = &jobs[group.slots[0]].entry;
            debug_assert_eq!(entry.id, *graph_id);
            shared
                .counters
                .point_queries
                .fetch_add(group.pairs.len() as u64, Ordering::Relaxed);
            entry
                .queries
                .fetch_add(group.pairs.len() as u64, Ordering::Relaxed);
            let runner = runners.entry(*graph_id).or_default();
            runner.run(&pool, &entry.graph, &group.pairs, &mut answers);
            for (slot, answer) in group.slots.iter().zip(&answers) {
                replies[*slot] = Some(Response::Distance {
                    distance: answer.distance,
                    relaxations: answer.relaxations,
                });
            }
        }

        for (i, job) in jobs.iter().enumerate() {
            if replies[i].is_none() {
                shared.counters.full_queries.fetch_add(1, Ordering::Relaxed);
                job.entry.queries.fetch_add(1, Ordering::Relaxed);
                replies[i] = Some(run_full_query(shared, &pool, job));
            }
        }

        for (job, reply) in jobs.drain(..).zip(replies.drain(..)) {
            let reply = reply.expect("every job got a reply");
            if matches!(reply, Response::Error { .. }) {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            let _ = job.reply.send(reply);
        }

        // Engine-state GC: drop per-graph runners (and their grouping
        // buffers) once their graph leaves the catalog, so unloading a
        // graph releases its engine memory too.
        runners.retain(|id, _| shared.catalog.contains(*id));
        groups.retain(|id, _| shared.catalog.contains(*id));
    }
}

fn vertex_error(q: &Query, n: usize) -> Response {
    Response::error(
        ErrorKind::BadVertex,
        format!(
            "vertex out of range (source {}, target {}, graph {} has {n})",
            q.source, q.target, q.graph
        ),
    )
}

/// Runs one full-vector query on the parallel engines.
fn run_full_query(shared: &Shared, pool: &Pool, job: &Job) -> Response {
    let query = &job.query;
    let graph = &job.entry.graph;
    if !dist_vec_fits(graph.num_vertices()) {
        return Response::error(
            ErrorKind::TooLarge,
            format!(
                "full-vector responses for {} vertices exceed the wire frame cap; \
                 use point (ppsp) queries against this graph",
                graph.num_vertices()
            ),
        );
    }
    let schedule = query.schedule.resolve(&shared.default_schedule);
    match query.op {
        QueryOp::Ppsp => unreachable!("point queries are batched"),
        QueryOp::Sssp => match sssp::delta_stepping_on(pool, graph, query.source, &schedule) {
            Ok(r) => Response::DistVec(r.dist),
            Err(e) => Response::error(ErrorKind::ScheduleRejected, e.to_string()),
        },
        QueryOp::Wbfs => match wbfs::wbfs_on(pool, graph, query.source, &schedule) {
            Ok(r) => Response::DistVec(r.dist),
            Err(e) => Response::error(ErrorKind::ScheduleRejected, e.to_string()),
        },
        QueryOp::KCore => {
            // "Server default" means the k-core-legal schedule, not the
            // SSSP-tuned one (whose Δ would be rejected by validation).
            let schedule = if query.schedule.strategy == WireStrategy::ServerDefault {
                Schedule::lazy_constant_sum()
            } else {
                schedule
            };
            let sym = job.entry.sym_graph();
            match kcore::kcore_on(pool, &sym, &schedule) {
                Ok(r) => Response::Coreness(r.coreness),
                Err(e) => Response::error(ErrorKind::ScheduleRejected, e.to_string()),
            }
        }
    }
}

/// Formats a distance for human-facing client output (`"-"` when the
/// vertex is unreachable).
pub fn fmt_distance(d: i64) -> String {
    if d >= UNREACHABLE {
        "-".to_string()
    } else {
        d.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use priograph_graph::gen::GraphGen;

    fn tiny_server(threads: usize) -> ServerHandle {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        serve(
            graph,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    #[test]
    fn stats_reflect_the_resident_graph() {
        let handle = tiny_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.num_vertices, 64);
        assert!(stats.num_edges > 0);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.graphs, 1);
        assert_eq!(stats.busy_rejections, 0);
        handle.stop();
    }

    #[test]
    fn out_of_range_queries_error_in_band() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client
            .request(&Request::Query(Query::ppsp(0, 9999)))
            .unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    kind: ErrorKind::BadVertex,
                    ..
                }
            ),
            "{resp:?}"
        );
        let resp = client.request(&Request::Query(Query::sssp(9999))).unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    kind: ErrorKind::BadVertex,
                    ..
                }
            ),
            "{resp:?}"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.queries, 2);
        handle.stop();
    }

    #[test]
    fn unknown_graph_id_is_a_typed_error() {
        let handle = tiny_server(1);
        let mut client = Client::connect(handle.addr()).unwrap();
        let resp = client.query(Query::ppsp(0, 1).on_graph(42)).unwrap();
        assert!(
            matches!(
                &resp,
                Response::Error {
                    kind: ErrorKind::UnknownGraph,
                    ..
                }
            ),
            "{resp:?}"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.errors, 1);
        handle.stop();
    }

    #[test]
    fn over_budget_requests_get_busy_not_queued() {
        let graph = GraphGen::road_grid(8, 8).seed(1).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                pending_budget: 8,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        // A batch larger than the whole budget can never be admitted.
        let big: Vec<Query> = (0..9).map(|i| Query::ppsp(0, i)).collect();
        match client.request(&Request::Batch(big)).unwrap() {
            Response::Busy { pending, budget } => {
                assert_eq!(budget, 8);
                assert!(pending <= 8);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // A batch that fits is served normally afterwards.
        let ok: Vec<Query> = (0..8).map(|i| Query::ppsp(0, i)).collect();
        let responses = client.batch(ok).unwrap();
        assert_eq!(responses.len(), 8);
        assert!(responses
            .iter()
            .all(|r| matches!(r, Response::Distance { .. })));
        let stats = client.stats().unwrap();
        assert_eq!(stats.busy_rejections, 1);
        assert_eq!(stats.queries, 8, "refused queries never execute");
        handle.stop();
    }

    #[test]
    fn v1_clients_get_a_v1_shaped_error_and_a_close() {
        let handle = tiny_server(1);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // A v1 Stats request: version byte 1, tag 2.
        write_frame(&mut stream, &[1u8, 2u8]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(payload[0], 1, "reply speaks v1");
        assert_eq!(payload[1], 5, "reply is a v1 Error");
        let msg_len = u64::from_le_bytes(payload[2..10].try_into().unwrap()) as usize;
        let message = std::str::from_utf8(&payload[10..10 + msg_len]).unwrap();
        assert!(message.contains("version"), "{message}");
        // The server closes the connection after the legacy error.
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
        handle.stop();
    }

    #[test]
    fn malformed_frames_get_an_error_and_do_not_kill_the_connection() {
        let handle = tiny_server(1);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Not even a version byte the server recognizes as legacy: version
        // 200 is "newer than us", answered in-band with v2.
        write_frame(&mut stream, &[200u8, 9, 9]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::UnsupportedVersion,
                ..
            }
        ));
        // A malformed v2 payload is BadRequest, and the connection lives.
        write_frame(&mut stream, &[PROTOCOL_VERSION, 99]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        write_frame(&mut stream, &Request::Stats.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Stats(_)
        ));
        handle.stop();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let handle = tiny_server(1);
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join(); // returns only because the client-side shutdown landed
                       // New connections are refused once the listener is gone.
        assert!(
            Client::connect(addr).is_err() || {
                // A race can leave the OS accept queue briefly alive; a request
                // against it must fail.
                let mut c = Client::connect(addr).unwrap();
                c.stats().is_err()
            }
        );
    }

    #[test]
    fn stop_returns_even_under_continuous_traffic() {
        // Regression: the dispatcher must observe shutdown even when a
        // client streams queries with sub-timeout gaps (it previously only
        // checked the flag on the idle-timeout branch).
        let handle = tiny_server(2);
        let addr = handle.addr();
        let spammer = std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(addr) else {
                return;
            };
            // Hammer until the server goes away (each is_ok() includes the
            // in-band shutting-down error; the loop ends when the
            // connection itself closes).
            while client.query(Query::ppsp(0, 63)).is_ok() {}
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        handle.stop(); // hangs forever if the dispatcher misses the flag
        let _ = spammer.join();
    }

    #[test]
    fn pending_reservations_release_after_each_request() {
        let graph = GraphGen::road_grid(6, 6).seed(2).build();
        let handle = serve(
            graph,
            ServerConfig {
                threads: 1,
                pending_budget: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        // Many budget-filling batches in sequence: if reservations leaked,
        // the second one would already be Busy.
        for round in 0..5 {
            let batch: Vec<Query> = (0..4).map(|i| Query::ppsp(0, i)).collect();
            let responses = client.batch(batch).unwrap();
            assert_eq!(responses.len(), 4, "round {round}");
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.busy_rejections, 0);
        handle.stop();
    }

    #[test]
    fn dist_vec_fits_tracks_the_frame_cap() {
        use crate::protocol::MAX_FRAME_LEN;
        assert!(dist_vec_fits(0));
        assert!(dist_vec_fits(1 << 20)); // ~8 MiB of distances
        assert!(!dist_vec_fits(MAX_FRAME_LEN / 8)); // envelope pushes it over
        assert!(!dist_vec_fits(usize::MAX)); // no overflow
    }

    #[test]
    fn fmt_distance_marks_unreachable() {
        assert_eq!(fmt_distance(12), "12");
        assert_eq!(fmt_distance(UNREACHABLE), "-");
    }
}
