//! The per-graph plan cache: the serving half of the planning layer.
//!
//! Before this layer existed the server executed whatever `WireSchedule`
//! each client guessed, per query, with no memory — the paper's headline
//! result (schedule choice dominates ordered-algorithm performance, §6)
//! applied to every query and nobody was in charge of it. A [`PlanCache`]
//! gives each resident graph one installed [`QueryPlan`] per plannable
//! [`AlgoFamily`]:
//!
//! * seeded with paper-informed **heuristics** from the graph's
//!   [`GraphProfile`] (avg degree, weight range, coordinates — §6.2's
//!   road-vs-social Δ bands) the moment the graph becomes resident;
//! * replaced by **tuned** plans when a `TuneGraph` request runs the
//!   autotuner against the resident graph;
//! * bypassed per query when the client **pins** an explicit schedule.
//!
//! Installation validates: the cache refuses any plan that fails
//! family-level legality ([`QueryPlan::validate`]), so the planning layer
//! can never hand the engines a documented-unsupported combination
//! (property-tested in `crates/autotune/tests/plan_legality.rs`).

use crate::protocol::WirePlan;
use priograph_core::plan::{AlgoFamily, GraphProfile, QueryPlan};
use priograph_core::schedule::ScheduleError;
use std::sync::Mutex;

/// Installed plans for one resident graph, one slot per plannable family.
///
/// Lookups clone (schedules are a few words); the mutex is uncontended in
/// steady state — the dispatcher is the only writer and reads happen once
/// per query round, not per vertex.
#[derive(Debug)]
pub struct PlanCache {
    slots: Mutex<Vec<QueryPlan>>,
}

impl PlanCache {
    /// Seeds a cache for a graph shaped like `profile` with the heuristic
    /// plan of every plannable family.
    pub fn seeded(profile: &GraphProfile) -> PlanCache {
        PlanCache {
            slots: Mutex::new(
                AlgoFamily::ALL
                    .iter()
                    .map(|&family| QueryPlan::heuristic(family, profile))
                    .collect(),
            ),
        }
    }

    /// The installed plan for `family` (always present: seeding covers
    /// every family).
    pub fn plan_for(&self, family: AlgoFamily) -> QueryPlan {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .find(|p| p.family == family)
            .cloned()
            .expect("seeded cache covers every family")
    }

    /// Installs `plan` in its family's slot, replacing the previous plan.
    ///
    /// # Errors
    ///
    /// Refuses plans that fail family-level validation — the cache is the
    /// last line of defense against a planner synthesizing a
    /// documented-unsupported combination.
    pub fn install(&self, plan: QueryPlan) -> Result<(), ScheduleError> {
        plan.validate()?;
        let mut slots = self.slots.lock().unwrap();
        match slots.iter_mut().find(|p| p.family == plan.family) {
            Some(slot) => *slot = plan,
            None => slots.push(plan),
        }
        Ok(())
    }

    /// Every installed plan, in [`AlgoFamily::ALL`] order.
    pub fn plans(&self) -> Vec<QueryPlan> {
        let slots = self.slots.lock().unwrap();
        AlgoFamily::ALL
            .iter()
            .filter_map(|&family| slots.iter().find(|p| p.family == family).cloned())
            .collect()
    }

    /// Wire projection of every installed plan (for `GraphInfo`).
    pub fn wire_plans(&self) -> Vec<WirePlan> {
        self.plans().iter().map(WirePlan::of_plan).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_core::plan::PlanOrigin;
    use priograph_core::schedule::{PriorityUpdateStrategy, Schedule};

    fn social_profile() -> GraphProfile {
        GraphProfile {
            vertices: 1 << 12,
            edges: 1 << 15,
            avg_degree: 8.0,
            max_weight: 1000,
            has_coords: false,
            symmetric: false,
        }
    }

    #[test]
    fn seeded_cache_covers_every_family_with_legal_plans() {
        let cache = PlanCache::seeded(&social_profile());
        let plans = cache.plans();
        assert_eq!(plans.len(), AlgoFamily::ALL.len());
        for plan in &plans {
            assert!(plan.validate().is_ok(), "{plan}");
            assert_eq!(plan.origin, PlanOrigin::Heuristic);
        }
        assert_eq!(
            cache.plan_for(AlgoFamily::KCore).schedule.priority_update,
            PriorityUpdateStrategy::LazyConstantSum
        );
    }

    #[test]
    fn install_replaces_and_validates() {
        let cache = PlanCache::seeded(&social_profile());
        let tuned = QueryPlan::new(
            AlgoFamily::Sssp,
            Schedule::eager_with_fusion(64),
            PlanOrigin::Tuned { trials: 12 },
        );
        cache.install(tuned.clone()).unwrap();
        assert_eq!(cache.plan_for(AlgoFamily::Sssp), tuned);
        // Still one slot per family.
        assert_eq!(cache.plans().len(), AlgoFamily::ALL.len());

        // An illegal plan is refused and the slot keeps the previous plan.
        let illegal = QueryPlan {
            family: AlgoFamily::Sssp,
            schedule: Schedule::lazy_constant_sum(),
            origin: PlanOrigin::Tuned { trials: 1 },
        };
        assert!(cache.install(illegal).is_err());
        assert_eq!(cache.plan_for(AlgoFamily::Sssp), tuned);
    }

    #[test]
    fn wire_projection_matches_installed_plans() {
        let cache = PlanCache::seeded(&social_profile());
        let wire = cache.wire_plans();
        assert_eq!(wire.len(), AlgoFamily::ALL.len());
        let sssp = cache.plan_for(AlgoFamily::Sssp);
        assert_eq!(wire[0].delta, sssp.schedule.delta);
    }
}
