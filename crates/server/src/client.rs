//! Blocking TCP client for the `priograph-serve` protocol.

use crate::protocol::{
    read_frame, write_frame, ErrorKind, GraphId, GraphInfo, Query, QueryOp, Request, Response,
    ServerStats, TuneOutcome, WireError,
};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request is in flight at a time (the protocol is
/// strictly request/response per connection; open more connections for
/// client-side concurrency — the server batches across them).
///
/// # Example
///
/// ```
/// use priograph_serve::client::Client;
/// use priograph_serve::protocol::{Query, Response};
/// use priograph_serve::server::{serve, ServerConfig};
/// use priograph_graph::gen::GraphGen;
///
/// let graph = GraphGen::road_grid(6, 6).seed(1).build();
/// let handle = serve(graph, ServerConfig { threads: 1, ..Default::default() }).unwrap();
///
/// let mut client = Client::connect(handle.addr()).unwrap();
/// let graphs = client.list_graphs().unwrap();
/// assert_eq!(graphs[0].name, "default");
/// match client.query(Query::ppsp(0, 35).on_graph(graphs[0].id)).unwrap() {
///     Response::Distance { distance, .. } => assert!(distance.is_some()),
///     other => panic!("unexpected {other:?}"),
/// }
/// handle.stop();
/// ```
pub struct Client {
    stream: TcpStream,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

/// Converts a non-payload reply into the matching typed error; used by the
/// helpers that expect one specific response shape.
fn unexpected(what: &str, got: Response) -> WireError {
    match got {
        Response::Error { kind, message } => WireError::Remote { kind, message },
        Response::Busy {
            scope,
            pending,
            budget,
            retry_after_ms,
        } => WireError::Busy {
            scope,
            pending,
            budget,
            retry_after_ms,
        },
        other => WireError::Malformed(format!("expected {what}, got {other:?}")),
    }
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on socket or framing failures (in-band
    /// [`Response::Error`]s and [`Response::Busy`]s are returned as `Ok`).
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Response::decode(&payload)
    }

    /// Runs one query.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn query(&mut self, query: Query) -> Result<Response, WireError> {
        self.request(&Request::Query(query))
    }

    /// Runs a batch, returning per-query responses in request order.
    ///
    /// # Errors
    ///
    /// Fails on wire errors, a [`WireError::Busy`] refusal, or a non-batch
    /// reply.
    pub fn batch(&mut self, queries: Vec<Query>) -> Result<Vec<Response>, WireError> {
        match self.request(&Request::Batch(queries))? {
            Response::Batch(items) => Ok(items),
            other => Err(unexpected("a batch response", other)),
        }
    }

    /// Fetches server statistics.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-stats reply.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("a stats response", other)),
        }
    }

    /// Lists the resident graphs (id order).
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-list reply.
    pub fn list_graphs(&mut self) -> Result<Vec<GraphInfo>, WireError> {
        match self.request(&Request::ListGraphs)? {
            Response::GraphList(graphs) => Ok(graphs),
            other => Err(unexpected("a graph list", other)),
        }
    }

    /// Resolves a graph name to its catalog id.
    ///
    /// # Errors
    ///
    /// Wire errors, or a typed [`WireError::Remote`] with
    /// [`ErrorKind::UnknownGraph`] when no resident graph has that name.
    pub fn resolve_graph(&mut self, name: &str) -> Result<GraphInfo, WireError> {
        self.list_graphs()?
            .into_iter()
            .find(|g| g.name == name)
            .ok_or_else(|| WireError::Remote {
                kind: ErrorKind::UnknownGraph,
                message: format!("no resident graph named {name:?}"),
            })
    }

    /// Loads a snapshot (by server-side path) as a named resident graph.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-`Loaded` reply (duplicate name, load
    /// failure — surfaced as typed [`WireError::Remote`]s).
    pub fn load_graph(&mut self, name: &str, path: &str) -> Result<GraphInfo, WireError> {
        let request = Request::LoadGraph {
            name: name.to_string(),
            path: path.to_string(),
        };
        match self.request(&request)? {
            Response::Loaded(info) => Ok(info),
            other => Err(unexpected("a loaded acknowledgement", other)),
        }
    }

    /// Unloads a resident graph by name.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-`Unloaded` reply.
    pub fn unload_graph(&mut self, name: &str) -> Result<(), WireError> {
        let request = Request::UnloadGraph {
            name: name.to_string(),
        };
        match self.request(&request)? {
            Response::Unloaded => Ok(()),
            other => Err(unexpected("an unloaded acknowledgement", other)),
        }
    }

    /// Runs the server-side autotuner for `algo` against graph `graph`
    /// with the given trial `budget`, installing the winning plan (which
    /// all subsequent unpinned queries for that graph/algorithm use).
    ///
    /// # Errors
    ///
    /// Fails on wire errors, a [`WireError::Busy`] refusal, or a typed
    /// remote error (`bad-request` for `ppsp`, `unknown-graph`).
    pub fn tune_graph(
        &mut self,
        graph: GraphId,
        algo: QueryOp,
        budget: u32,
    ) -> Result<TuneOutcome, WireError> {
        let request = Request::TuneGraph {
            graph,
            algo,
            budget,
        };
        match self.request(&request)? {
            Response::Tuned(outcome) => Ok(outcome),
            other => Err(unexpected("a tune outcome", other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-acknowledgement reply.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("a shutdown acknowledgement", other)),
        }
    }
}
