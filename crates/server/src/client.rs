//! Blocking TCP client for the `priograph-serve` protocol.

use crate::protocol::{read_frame, write_frame, Query, Request, Response, ServerStats, WireError};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request is in flight at a time (the protocol is
/// strictly request/response per connection; open more connections for
/// client-side concurrency — the server batches across them).
pub struct Client {
    stream: TcpStream,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on socket or framing failures (in-band
    /// [`Response::Error`]s are returned as `Ok`).
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Response::decode(&payload)
    }

    /// Runs one query.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn query(&mut self, query: Query) -> Result<Response, WireError> {
        self.request(&Request::Query(query))
    }

    /// Runs a batch, returning per-query responses in request order.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-batch reply.
    pub fn batch(&mut self, queries: Vec<Query>) -> Result<Vec<Response>, WireError> {
        match self.request(&Request::Batch(queries))? {
            Response::Batch(items) => Ok(items),
            Response::Error(why) => Err(WireError::Remote(why)),
            other => Err(WireError::Malformed(format!(
                "expected a batch response, got {other:?}"
            ))),
        }
    }

    /// Fetches server statistics.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-stats reply.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(why) => Err(WireError::Remote(why)),
            other => Err(WireError::Malformed(format!(
                "expected a stats response, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-acknowledgement reply.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error(why) => Err(WireError::Remote(why)),
            other => Err(WireError::Malformed(format!(
                "expected a shutdown acknowledgement, got {other:?}"
            ))),
        }
    }
}
