//! Blocking TCP client for the `priograph-serve` protocol.
//!
//! Two layers:
//!
//! - [`Client`]: one connection, one request in flight, bounded
//!   connect/read/write timeouts ([`ClientConfig`]). Socket failures and
//!   refusals surface as typed [`WireError`]s; nothing blocks forever.
//! - [`ResilientClient`]: wraps connect-on-demand around a [`Client`] and
//!   adds the client half of the failure model (`docs/ARCHITECTURE.md`
//!   §7): jittered exponential [`Backoff`] honoring server
//!   `retry_after_ms` hints, and a three-state [`CircuitBreaker`]
//!   (closed → open on consecutive `Busy`/`Timeout`/IO failures →
//!   half-open probe) so a retry storm cannot amplify the very overload
//!   it is retrying against.

use crate::protocol::{
    read_frame, write_frame, ErrorKind, GraphId, GraphInfo, Query, QueryOp, Request, Response,
    ServerStats, StatsV2, TuneOutcome, WireError,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Connection and socket budgets for a [`Client`]. Every default is
/// finite: a client must never block forever on a dead or stalled server.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect budget in milliseconds (default 10 000).
    pub connect_timeout_ms: u64,
    /// Socket read budget in milliseconds (default 30 000) — covers the
    /// whole response wait, so it must exceed the slowest expected query.
    pub read_timeout_ms: u64,
    /// Socket write budget in milliseconds (default 30 000).
    pub write_timeout_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout_ms: 10_000,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
        }
    }
}

/// A connected client. One request is in flight at a time (the protocol is
/// strictly request/response per connection; open more connections for
/// client-side concurrency — the server batches across them).
///
/// # Example
///
/// ```
/// use priograph_serve::client::Client;
/// use priograph_serve::protocol::{Query, Response};
/// use priograph_serve::server::{serve, ServerConfig};
/// use priograph_graph::gen::GraphGen;
///
/// let graph = GraphGen::road_grid(6, 6).seed(1).build();
/// let handle = serve(graph, ServerConfig { threads: 1, ..Default::default() }).unwrap();
///
/// let mut client = Client::connect(handle.addr()).unwrap();
/// let graphs = client.list_graphs().unwrap();
/// assert_eq!(graphs[0].name, "default");
/// match client.query(Query::ppsp(0, 35).on_graph(graphs[0].id)).unwrap() {
///     Response::Distance { distance, .. } => assert!(distance.is_some()),
///     other => panic!("unexpected {other:?}"),
/// }
/// handle.stop();
/// ```
pub struct Client {
    stream: TcpStream,
    /// The resolved peer address, kept for [`Client::reconnect`].
    addr: Option<SocketAddr>,
    config: ClientConfig,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

/// Converts a non-payload reply into the matching typed error; used by the
/// helpers that expect one specific response shape.
fn unexpected(what: &str, got: Response) -> WireError {
    match got {
        Response::Error { kind, message } => WireError::Remote { kind, message },
        Response::Busy {
            scope,
            pending,
            budget,
            retry_after_ms,
        } => WireError::Busy {
            scope,
            pending,
            budget,
            retry_after_ms,
        },
        other => WireError::Malformed(format!("expected {what}, got {other:?}")),
    }
}

impl Client {
    /// Connects to a server with default [`ClientConfig`] budgets.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including connect timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeout budgets. Each resolved address is
    /// tried under the connect budget; the last failure is reported if
    /// none succeeds.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including connect timeout).
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let connect_budget = Duration::from_millis(config.connect_timeout_ms.max(1));
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, connect_budget) {
                Ok(stream) => return Client::from_stream(stream, Some(candidate), config),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no socket addresses resolved")
        }))
    }

    /// Re-establishes the connection to the same peer (after a socket
    /// error left this one dead).
    ///
    /// # Errors
    ///
    /// Fails when the peer address is unknown or the connect fails.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let Some(addr) = self.addr else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "peer address unknown; cannot reconnect",
            ));
        };
        let connect_budget = Duration::from_millis(self.config.connect_timeout_ms.max(1));
        let stream = TcpStream::connect_timeout(&addr, connect_budget)?;
        let _ = stream.set_nodelay(true);
        apply_io_timeouts(&stream, &self.config);
        self.stream = stream;
        Ok(())
    }

    fn from_stream(
        stream: TcpStream,
        addr: Option<SocketAddr>,
        config: ClientConfig,
    ) -> std::io::Result<Client> {
        let _ = stream.set_nodelay(true);
        apply_io_timeouts(&stream, &config);
        Ok(Client {
            stream,
            addr,
            config,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on socket or framing failures (in-band
    /// [`Response::Error`]s and [`Response::Busy`]s are returned as `Ok`).
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Response::decode(&payload)
    }

    /// Runs one query.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn query(&mut self, query: Query) -> Result<Response, WireError> {
        self.request(&Request::Query(query))
    }

    /// Runs a batch, returning per-query responses in request order.
    ///
    /// # Errors
    ///
    /// Fails on wire errors, a [`WireError::Busy`] refusal, or a non-batch
    /// reply.
    pub fn batch(&mut self, queries: Vec<Query>) -> Result<Vec<Response>, WireError> {
        match self.request(&Request::Batch(queries))? {
            Response::Batch(items) => Ok(items),
            other => Err(unexpected("a batch response", other)),
        }
    }

    /// Fetches server statistics.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-stats reply.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("a stats response", other)),
        }
    }

    /// Fetches the self-describing v5 statistics frame: every counter by
    /// name plus the latency series summaries (`docs/PROTOCOL.md` §4.3).
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-`StatsV2` reply.
    pub fn stats_v2(&mut self) -> Result<StatsV2, WireError> {
        match self.request(&Request::StatsV2)? {
            Response::StatsV2(stats) => Ok(stats),
            other => Err(unexpected("a stats-v2 response", other)),
        }
    }

    /// Lists the resident graphs (id order).
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-list reply.
    pub fn list_graphs(&mut self) -> Result<Vec<GraphInfo>, WireError> {
        match self.request(&Request::ListGraphs)? {
            Response::GraphList(graphs) => Ok(graphs),
            other => Err(unexpected("a graph list", other)),
        }
    }

    /// Resolves a graph name to its catalog id.
    ///
    /// # Errors
    ///
    /// Wire errors, or a typed [`WireError::Remote`] with
    /// [`ErrorKind::UnknownGraph`] when no resident graph has that name.
    pub fn resolve_graph(&mut self, name: &str) -> Result<GraphInfo, WireError> {
        self.list_graphs()?
            .into_iter()
            .find(|g| g.name == name)
            .ok_or_else(|| WireError::Remote {
                kind: ErrorKind::UnknownGraph,
                message: format!("no resident graph named {name:?}"),
            })
    }

    /// Loads a snapshot (by server-side path) as a named resident graph.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-`Loaded` reply (duplicate name, load
    /// failure — surfaced as typed [`WireError::Remote`]s).
    pub fn load_graph(&mut self, name: &str, path: &str) -> Result<GraphInfo, WireError> {
        let request = Request::LoadGraph {
            name: name.to_string(),
            path: path.to_string(),
        };
        match self.request(&request)? {
            Response::Loaded(info) => Ok(info),
            other => Err(unexpected("a loaded acknowledgement", other)),
        }
    }

    /// Unloads a resident graph by name.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-`Unloaded` reply.
    pub fn unload_graph(&mut self, name: &str) -> Result<(), WireError> {
        let request = Request::UnloadGraph {
            name: name.to_string(),
        };
        match self.request(&request)? {
            Response::Unloaded => Ok(()),
            other => Err(unexpected("an unloaded acknowledgement", other)),
        }
    }

    /// Runs the server-side autotuner for `algo` against graph `graph`
    /// with the given trial `budget`, installing the winning plan (which
    /// all subsequent unpinned queries for that graph/algorithm use).
    ///
    /// # Errors
    ///
    /// Fails on wire errors, a [`WireError::Busy`] refusal, or a typed
    /// remote error (`bad-request` for `ppsp`, `unknown-graph`).
    pub fn tune_graph(
        &mut self,
        graph: GraphId,
        algo: QueryOp,
        budget: u32,
    ) -> Result<TuneOutcome, WireError> {
        let request = Request::TuneGraph {
            graph,
            algo,
            budget,
        };
        match self.request(&request)? {
            Response::Tuned(outcome) => Ok(outcome),
            other => Err(unexpected("a tune outcome", other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Fails on wire errors or a non-acknowledgement reply.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("a shutdown acknowledgement", other)),
        }
    }
}

fn apply_io_timeouts(stream: &TcpStream, config: &ClientConfig) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms.max(1))));
}

/// Jittered exponential backoff between retries: the delay doubles per
/// attempt from `base_ms`, never undercuts the server's `retry_after_ms`
/// hint, is capped at `cap_ms`, and carries deterministic ±25% jitter (a
/// splitmix64 walk from `seed`) so synchronized clients spread out.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    state: u64,
}

impl Backoff {
    /// A backoff schedule from `base_ms` doubling up to `cap_ms`; `seed`
    /// makes the jitter sequence reproducible.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            state: seed,
        }
    }

    /// The delay before retry number `attempt` (0-based), honoring the
    /// server's `retry_after_ms` hint (`0` = no hint).
    pub fn delay(&mut self, attempt: u32, hint_ms: u64) -> Duration {
        let exponential = self.base_ms.saturating_mul(1u64 << attempt.min(16));
        let raw = exponential.max(hint_ms).min(self.cap_ms);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let permille = 750 + z % 501;
        Duration::from_millis((raw.saturating_mul(permille) / 1000).max(1))
    }
}

/// The three states of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are refused locally until the cooldown elapses.
    Open,
    /// One probe request is allowed through: success closes the breaker,
    /// failure re-opens it for another cooldown.
    HalfOpen,
}

/// A three-state circuit breaker: `threshold` consecutive failures open
/// it, a `cooldown` later one half-open probe decides whether it closes
/// again. While open, [`CircuitBreaker::preflight`] refuses locally — the
/// request is never sent, so a retry storm cannot amplify the overload it
/// is retrying against (ROADMAP "Next directions" #1).
///
/// What counts as a failure is the caller's choice (see
/// [`breaker_failure`] for the serving policy: admission refusals,
/// deadline timeouts, shedding, and socket errors count; ordinary typed
/// errors are the server working fine).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures
    /// and probes again `cooldown` after opening.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }

    /// The current state (the open → half-open transition happens in
    /// [`CircuitBreaker::preflight`], not here).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate before sending a request: `Ok` means send (closed, or the
    /// half-open probe), `Err` carries the time until the next probe.
    ///
    /// # Errors
    ///
    /// Refuses while open within the cooldown window.
    pub fn preflight(&mut self) -> Result<(), Duration> {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let since = self.opened_at.map_or(self.cooldown, |at| at.elapsed());
                if since >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    Err(self.cooldown - since)
                }
            }
        }
    }

    /// Records a successful request: closes the breaker and resets the
    /// failure count.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
    }

    /// Records a failed request: opens the breaker when the consecutive
    /// count reaches the threshold, and re-opens immediately on a failed
    /// half-open probe.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            self.opened_at = Some(Instant::now());
        }
    }
}

/// The serving failure policy for [`CircuitBreaker`] accounting: `Busy`
/// refusals, deadline `Timeout`s, connection-level `Overloaded` shedding,
/// drain (`ShuttingDown`) refusals, and socket errors count as failures —
/// they all mean "the server cannot take this work right now". Ordinary
/// typed errors (bad vertex, unknown graph, malformed request) do not:
/// the server handled the request fine; the request was wrong.
pub fn breaker_failure(outcome: &Result<Response, WireError>) -> bool {
    let kind_counts = |kind: &ErrorKind| {
        matches!(
            kind,
            ErrorKind::Timeout | ErrorKind::Overloaded | ErrorKind::ShuttingDown
        )
    };
    match outcome {
        Ok(Response::Busy { .. }) | Err(WireError::Busy { .. }) | Err(WireError::Io(_)) => true,
        Ok(Response::Error { kind, .. }) | Err(WireError::Remote { kind, .. }) => kind_counts(kind),
        Ok(_) | Err(_) => false,
    }
}

/// The server's retry hint attached to `outcome`, `0` when there is none.
fn retry_hint(outcome: &Result<Response, WireError>) -> u64 {
    match outcome {
        Ok(Response::Busy { retry_after_ms, .. }) | Err(WireError::Busy { retry_after_ms, .. }) => {
            *retry_after_ms
        }
        _ => 0,
    }
}

/// Whether a failed `outcome` is worth retrying: refusals that promise
/// future capacity (`Busy`, `Overloaded`) and socket errors are; a
/// deadline `Timeout` (the budget is spent) and a drain refusal (the
/// server is going away) are not.
fn retriable(outcome: &Result<Response, WireError>) -> bool {
    let kind_retries = |kind: &ErrorKind| matches!(kind, ErrorKind::Overloaded);
    match outcome {
        Ok(Response::Busy { .. }) | Err(WireError::Busy { .. }) | Err(WireError::Io(_)) => true,
        Ok(Response::Error { kind, .. }) | Err(WireError::Remote { kind, .. }) => {
            kind_retries(kind)
        }
        Ok(_) | Err(_) => false,
    }
}

/// The outcome class of one wire attempt, as seen by a [`ClientEvent`]
/// sink. This is a lossy projection of `Result<Response, WireError>` —
/// just enough for accounting (the load harness tallies per-class rates
/// and reconciles them against server counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptClass {
    /// A successful (non-error) response.
    Success,
    /// A typed error of the carried kind, in-band or wire-level.
    Error(ErrorKind),
    /// An admission refusal (`Busy`), in-band or wire-level.
    Busy,
    /// A socket error: connect failure, read/write timeout, peer close.
    Io,
    /// A framing or versioning failure (malformed frame, version
    /// mismatch, oversized frame).
    Wire,
}

impl AttemptClass {
    /// Classifies one attempt outcome (the same shape
    /// [`Client::request`] returns).
    pub fn of(outcome: &Result<Response, WireError>) -> AttemptClass {
        match outcome {
            Ok(Response::Busy { .. }) | Err(WireError::Busy { .. }) => AttemptClass::Busy,
            Ok(Response::Error { kind, .. }) | Err(WireError::Remote { kind, .. }) => {
                AttemptClass::Error(*kind)
            }
            Ok(_) => AttemptClass::Success,
            Err(WireError::Io(_)) => AttemptClass::Io,
            Err(_) => AttemptClass::Wire,
        }
    }
}

/// One observable step inside [`ResilientClient::request`], delivered to
/// the sink installed with [`ResilientClient::set_event_sink`]. Events
/// are emitted in causal order: the attempt outcome first, then any
/// breaker transition it caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// One wire attempt resolved. `attempt` is 0-based within the
    /// request; `failure` is the [`breaker_failure`] verdict the breaker
    /// was fed for this outcome.
    Attempt {
        /// 0-based attempt index within the current request.
        attempt: u32,
        /// What the attempt resolved to.
        class: AttemptClass,
        /// Whether the breaker counted this outcome as a failure.
        failure: bool,
    },
    /// The circuit breaker moved between states.
    Breaker {
        /// State before the transition.
        from: BreakerState,
        /// State after the transition.
        to: BreakerState,
    },
    /// The open breaker refused the request locally — nothing was sent.
    LocalRefusal {
        /// Milliseconds until the next half-open probe is allowed.
        retry_after_ms: u64,
    },
}

/// The sink type [`ResilientClient::set_event_sink`] installs.
type EventSink = Box<dyn FnMut(ClientEvent) + Send>;

/// A [`Client`] with the full client-side failure model: connects on
/// demand (and reconnects after socket errors), retries retriable
/// failures under a jittered [`Backoff`] honoring server hints, and
/// routes every outcome through a [`CircuitBreaker`] so sustained failure
/// short-circuits locally with [`WireError::CircuitOpen`] instead of
/// hammering a struggling server.
pub struct ResilientClient {
    addr: SocketAddr,
    config: ClientConfig,
    breaker: CircuitBreaker,
    backoff: Backoff,
    max_attempts: u32,
    inner: Option<Client>,
    sink: Option<EventSink>,
}

impl fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addr", &self.addr)
            .field("breaker", &self.breaker)
            .field("max_attempts", &self.max_attempts)
            .field("connected", &self.inner.is_some())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl ResilientClient {
    /// A resilient client with the default policy: 4 attempts, backoff
    /// 10ms doubling to 2s, breaker opening after 5 consecutive failures
    /// with a 1s cooldown.
    pub fn new(addr: SocketAddr) -> ResilientClient {
        ResilientClient::with_policy(
            addr,
            ClientConfig::default(),
            CircuitBreaker::new(5, Duration::from_millis(1_000)),
            Backoff::new(10, 2_000, u64::from(addr.port()) | 1),
            4,
        )
    }

    /// A resilient client with explicit budgets and policy.
    pub fn with_policy(
        addr: SocketAddr,
        config: ClientConfig,
        breaker: CircuitBreaker,
        backoff: Backoff,
        max_attempts: u32,
    ) -> ResilientClient {
        ResilientClient {
            addr,
            config,
            breaker,
            backoff,
            max_attempts: max_attempts.max(1),
            inner: None,
            sink: None,
        }
    }

    /// The breaker's current state (for monitoring and tests).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Installs an event sink observing every attempt outcome, breaker
    /// transition, and local refusal (replacing any previous sink). The
    /// sink is observation-only: it cannot alter retry or breaker
    /// decisions, and it runs inline on the requesting thread — keep it
    /// cheap (the load harness records into a lock-free ring).
    pub fn set_event_sink(&mut self, sink: impl FnMut(ClientEvent) + Send + 'static) {
        self.sink = Some(Box::new(sink));
    }

    /// Removes any installed event sink.
    pub fn clear_event_sink(&mut self) {
        self.sink = None;
    }

    fn emit(&mut self, event: ClientEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink(event);
        }
    }

    /// Sends one request under the full policy. Always resolves: an
    /// answer, an in-band typed error, or a typed [`WireError`] — never a
    /// hang, never a panic.
    ///
    /// # Errors
    ///
    /// [`WireError::CircuitOpen`] when the breaker refuses locally;
    /// otherwise the last attempt's failure once retries are exhausted.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        let mut attempt = 0u32;
        loop {
            let pre = self.breaker.state();
            let gate = self.breaker.preflight();
            let post = self.breaker.state();
            if pre != post {
                // Open → HalfOpen: the cooldown elapsed and this request
                // is the probe.
                self.emit(ClientEvent::Breaker {
                    from: pre,
                    to: post,
                });
            }
            if let Err(wait) = gate {
                let retry_after_ms = (wait.as_millis() as u64).max(1);
                self.emit(ClientEvent::LocalRefusal { retry_after_ms });
                return Err(WireError::CircuitOpen { retry_after_ms });
            }
            let outcome = self.try_once(request);
            let failure = breaker_failure(&outcome);
            self.emit(ClientEvent::Attempt {
                attempt,
                class: AttemptClass::of(&outcome),
                failure,
            });
            let pre = self.breaker.state();
            if failure {
                self.breaker.record_failure();
            } else if outcome.is_ok() {
                self.breaker.record_success();
            }
            let post = self.breaker.state();
            if pre != post {
                self.emit(ClientEvent::Breaker {
                    from: pre,
                    to: post,
                });
            }
            if matches!(outcome, Err(WireError::Io(_))) {
                // The socket state is unknown after an IO error; the next
                // attempt reconnects.
                self.inner = None;
            }
            if !retriable(&outcome) || attempt + 1 >= self.max_attempts {
                return outcome;
            }
            let hint = retry_hint(&outcome);
            std::thread::sleep(self.backoff.delay(attempt, hint));
            attempt += 1;
        }
    }

    /// Runs one query under the full policy (see
    /// [`ResilientClient::request`]).
    ///
    /// # Errors
    ///
    /// As for [`ResilientClient::request`].
    pub fn query(&mut self, query: Query) -> Result<Response, WireError> {
        self.request(&Request::Query(query))
    }

    fn try_once(&mut self, request: &Request) -> Result<Response, WireError> {
        if self.inner.is_none() {
            match Client::connect_with(self.addr, self.config.clone()) {
                Ok(client) => self.inner = Some(client),
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        match self.inner.as_mut() {
            Some(client) => client.request(request),
            None => Err(WireError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "not connected",
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BusyScope;

    #[test]
    fn breaker_walks_closed_open_half_open_on_a_scripted_sequence() {
        let mut breaker = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(breaker.state(), BreakerState::Closed);
        // A scripted run of refusals a server under overload would emit.
        let script: [Result<Response, WireError>; 3] = [
            Ok(Response::Busy {
                scope: BusyScope::Global,
                pending: 9,
                budget: 8,
                retry_after_ms: 5,
            }),
            Ok(Response::Error {
                kind: ErrorKind::Timeout,
                message: "deadline expired".to_string(),
            }),
            Err(WireError::Io(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "peer reset",
            ))),
        ];
        for (i, outcome) in script.iter().enumerate() {
            assert!(
                breaker.preflight().is_ok(),
                "failure {i} not yet at threshold"
            );
            assert!(breaker_failure(outcome), "script entry {i} must count");
            breaker.record_failure();
        }
        // Threshold reached: open, refusing locally with a wait hint.
        assert_eq!(breaker.state(), BreakerState::Open);
        let wait = breaker.preflight().expect_err("open breaker refuses");
        assert!(wait <= Duration::from_millis(30));
        // Cooldown elapses: exactly one half-open probe is let through.
        std::thread::sleep(Duration::from_millis(40));
        assert!(breaker.preflight().is_ok());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // A failed probe re-opens immediately (no threshold count).
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        // Next probe succeeds: closed, counters reset.
        std::thread::sleep(Duration::from_millis(40));
        assert!(breaker.preflight().is_ok());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.preflight().is_ok());
    }

    #[test]
    fn ordinary_typed_errors_do_not_trip_the_breaker() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::BadVertex,
            ErrorKind::UnknownGraph,
            ErrorKind::TooLarge,
        ] {
            let outcome: Result<Response, WireError> = Ok(Response::Error {
                kind,
                message: String::new(),
            });
            assert!(!breaker_failure(&outcome), "{kind:?} must not count");
        }
        let ok: Result<Response, WireError> = Ok(Response::DistVec(vec![0]));
        assert!(!breaker_failure(&ok));
    }

    #[test]
    fn backoff_doubles_honors_hints_and_stays_jitter_banded() {
        let mut backoff = Backoff::new(10, 2_000, 42);
        for attempt in 0..4u32 {
            let base = 10u64 << attempt;
            let d = backoff.delay(attempt, 0).as_millis() as u64;
            assert!(
                d >= base * 3 / 4 && d <= base * 5 / 4,
                "attempt {attempt}: {d}ms outside ±25% of {base}ms"
            );
        }
        // A server hint larger than the exponential term wins.
        let d = backoff.delay(0, 500).as_millis() as u64;
        assert!((375..=625).contains(&d), "{d}ms ignores the 500ms hint");
        // The cap bounds even late attempts (2000 * 1.25 = 2500).
        let d = backoff.delay(16, 0).as_millis() as u64;
        assert!(d <= 2_500, "{d}ms exceeds the jittered cap");
    }

    #[test]
    fn resilient_client_reports_io_then_short_circuits_with_circuit_open() {
        // A port nothing listens on: every attempt is a connect failure.
        let dead = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
            // listener drops here; the port is free again
        };
        let mut client = ResilientClient::with_policy(
            dead,
            ClientConfig {
                connect_timeout_ms: 200,
                ..ClientConfig::default()
            },
            CircuitBreaker::new(2, Duration::from_millis(10_000)),
            Backoff::new(1, 5, 7),
            2,
        );
        // Two attempts, both IO failures: the error is typed, and the
        // breaker reached its threshold.
        match client.request(&Request::Stats) {
            Err(WireError::Io(_)) => {}
            other => panic!("expected an IO error, got {other:?}"),
        }
        assert_eq!(client.breaker_state(), BreakerState::Open);
        // The next call never touches the network: local typed refusal.
        match client.request(&Request::Stats) {
            Err(WireError::CircuitOpen { retry_after_ms }) => assert!(retry_after_ms >= 1),
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
    }

    #[test]
    fn event_sink_sees_attempts_transitions_and_refusals_in_causal_order() {
        use std::sync::{Arc, Mutex};

        let dead = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let mut client = ResilientClient::with_policy(
            dead,
            ClientConfig {
                connect_timeout_ms: 200,
                ..ClientConfig::default()
            },
            CircuitBreaker::new(2, Duration::from_millis(10_000)),
            Backoff::new(1, 5, 7),
            2,
        );
        let events: Arc<Mutex<Vec<ClientEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_events = Arc::clone(&events);
        client.set_event_sink(move |e| sink_events.lock().unwrap().push(e));

        assert!(matches!(
            client.request(&Request::Stats),
            Err(WireError::Io(_))
        ));
        assert!(matches!(
            client.request(&Request::Stats),
            Err(WireError::CircuitOpen { .. })
        ));

        let log = events.lock().unwrap().clone();
        assert_eq!(
            log,
            vec![
                ClientEvent::Attempt {
                    attempt: 0,
                    class: AttemptClass::Io,
                    failure: true,
                },
                ClientEvent::Attempt {
                    attempt: 1,
                    class: AttemptClass::Io,
                    failure: true,
                },
                ClientEvent::Breaker {
                    from: BreakerState::Closed,
                    to: BreakerState::Open,
                },
                ClientEvent::LocalRefusal {
                    retry_after_ms: log
                        .iter()
                        .find_map(|e| match e {
                            ClientEvent::LocalRefusal { retry_after_ms } => Some(*retry_after_ms),
                            _ => None,
                        })
                        .unwrap_or(0),
                },
            ]
        );

        // Removing the sink stops delivery without changing behavior.
        client.clear_event_sink();
        assert!(matches!(
            client.request(&Request::Stats),
            Err(WireError::CircuitOpen { .. })
        ));
        assert_eq!(events.lock().unwrap().len(), log.len());
    }
}
