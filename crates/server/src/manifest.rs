//! Catalog persistence: a manifest file that makes residency declarative.
//!
//! The catalog is otherwise in-memory only — a restart forgets every
//! wire-loaded graph and every tuned plan. With `--manifest FILE` the
//! server writes this file on every catalog change (load, unload, plan
//! install) and replays it at boot, so residency and tuning survive
//! restarts.
//!
//! # Format (`priograph-manifest-v1`)
//!
//! Line-oriented UTF-8, one record per line, fields tab-separated; values
//! are percent-escaped (`%`, tab, CR, LF) so arbitrary graph names and
//! paths round-trip:
//!
//! ```text
//! priograph-manifest-v1
//! graph\t<name>\t<snapshot path>
//! plan\t<name>\t<family>\t<strategy>\t<delta>\t<fusion>\t<buckets>\t<direction>\t<grain>\t<trials>
//! ```
//!
//! Only snapshot-backed entries are recorded (`graph` lines need a path to
//! reload from; generated or in-process graphs are skipped), and only
//! **tuned** plans get `plan` lines — heuristic plans are deterministic
//! functions of the graph and reseed for free at load. Unknown line kinds
//! are ignored (forward compatibility), malformed lines are reported and
//! skipped: boot restores what it can.

use crate::catalog::Catalog;
use priograph_core::plan::{AlgoFamily, PlanOrigin, QueryPlan};
use priograph_core::schedule::{Direction, Parallelization, PriorityUpdateStrategy, Schedule};
use std::io::Write;
use std::path::Path;

/// First line of every manifest; bump on any format change.
pub const MANIFEST_HEADER: &str = "priograph-manifest-v1";

/// What a [`Catalog::attach_manifest`] restore accomplished.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Graph names loaded from their recorded snapshots.
    pub loaded: Vec<String>,
    /// Tuned plans reinstalled, as `(graph, family)` pairs.
    pub plans: Vec<(String, String)>,
    /// Records that could not be restored, with the reason — a moved
    /// snapshot, a name already resident, a malformed line.
    pub skipped: Vec<(String, String)>,
}

/// Percent-escapes the characters the line format reserves.
fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`]; unknown or truncated escapes are an error (a
/// hand-edited manifest should fail loudly per line, not silently corrupt a
/// graph name).
fn unescape(field: &str) -> Result<String, String> {
    let mut out = String::with_capacity(field.len());
    let bytes = field.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = field
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {field:?}"))?;
            let code = u8::from_str_radix(hex, 16)
                .map_err(|_| format!("bad escape %{hex} in {field:?}"))?;
            out.push(code as char);
            i += 3;
        } else {
            // Safe: we only split at '%', which is ASCII; push the whole
            // UTF-8 character.
            let c = field[i..].chars().next().expect("in-bounds index");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

fn parse_strategy(text: &str) -> Result<PriorityUpdateStrategy, String> {
    match text {
        "eager_with_fusion" => Ok(PriorityUpdateStrategy::EagerWithFusion),
        "eager_no_fusion" => Ok(PriorityUpdateStrategy::EagerNoFusion),
        "lazy" => Ok(PriorityUpdateStrategy::Lazy),
        "lazy_constant_sum" => Ok(PriorityUpdateStrategy::LazyConstantSum),
        other => Err(format!("unknown strategy {other:?}")),
    }
}

fn parse_direction(text: &str) -> Result<Direction, String> {
    match text {
        "SparsePush" => Ok(Direction::SparsePush),
        "DensePull" => Ok(Direction::DensePull),
        other => Err(format!("unknown direction {other:?}")),
    }
}

/// Serializes the catalog's persistable state to manifest lines.
pub fn render(catalog: &Catalog) -> String {
    let mut out = String::from(MANIFEST_HEADER);
    out.push('\n');
    for entry in catalog.list() {
        let Some(path) = &entry.source_path else {
            continue; // nothing to reload this entry from
        };
        out.push_str(&format!(
            "graph\t{}\t{}\n",
            escape(&entry.name),
            escape(path)
        ));
        for plan in entry.plans.plans() {
            let PlanOrigin::Tuned { trials } = plan.origin else {
                continue; // heuristic plans reseed for free at load
            };
            let s = &plan.schedule;
            out.push_str(&format!(
                "plan\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                escape(&entry.name),
                plan.family.as_str(),
                s.priority_update.as_str(),
                s.delta,
                s.fusion_threshold,
                s.num_open_buckets,
                s.direction.as_str(),
                s.grain(),
                trials,
            ));
        }
    }
    out
}

/// Writes the manifest atomically (temp file + rename) so a crash mid-write
/// never leaves a truncated manifest behind.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write(catalog: &Catalog, path: &Path) -> std::io::Result<()> {
    let rendered = render(catalog);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(rendered.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn parse_plan_line(fields: &[&str]) -> Result<(String, QueryPlan), String> {
    if fields.len() != 9 {
        return Err(format!("plan line has {} fields, want 9", fields.len()));
    }
    let name = unescape(fields[0])?;
    let family = AlgoFamily::parse(fields[1])?;
    let strategy = parse_strategy(fields[2])?;
    let num = |s: &str, what: &str| -> Result<i64, String> {
        s.parse().map_err(|_| format!("bad {what} {s:?}"))
    };
    // Representation knobs must be strictly positive here: the engines
    // assert on zero buckets/grain and QueryPlan::validate only covers the
    // family-level rules, so a corrupt or hand-edited line has to fail at
    // parse time, per line, loudly.
    let pos = |s: &str, what: &str| -> Result<usize, String> {
        match num(s, what)? {
            v if v >= 1 => Ok(v as usize),
            v => Err(format!("{what} must be >= 1, got {v}")),
        }
    };
    let delta = num(fields[3], "delta")?;
    let fusion = pos(fields[4], "fusion threshold")?;
    let buckets = pos(fields[5], "bucket count")?;
    let direction = parse_direction(fields[6])?;
    let grain = pos(fields[7], "grain")?;
    let trials = u32::try_from(num(fields[8], "trial count")?)
        .map_err(|_| format!("trial count {:?} out of range", fields[8]))?;
    let schedule = Schedule {
        priority_update: strategy,
        delta,
        fusion_threshold: fusion,
        num_open_buckets: buckets,
        direction,
        parallelization: Parallelization::DynamicVertex { grain },
    };
    Ok((
        name,
        QueryPlan::new(family, schedule, PlanOrigin::Tuned { trials }),
    ))
}

/// Replays `path` into `catalog`: loads recorded graphs from their
/// snapshots and reinstalls tuned plans. Missing file → empty report (a
/// fresh `--manifest` starts blank). Every failure is recorded in the
/// report, none is fatal.
pub fn restore(catalog: &Catalog, path: &Path) -> RestoreReport {
    let mut report = RestoreReport::default();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return report,
        Err(e) => {
            report
                .skipped
                .push((path.display().to_string(), format!("read failed: {e}")));
            return report;
        }
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        report.skipped.push((
            path.display().to_string(),
            format!("missing {MANIFEST_HEADER:?} header"),
        ));
        return report;
    }
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "graph" if fields.len() == 3 => {
                let (name, snap) = match (unescape(fields[1]), unescape(fields[2])) {
                    (Ok(n), Ok(p)) => (n, p),
                    (Err(e), _) | (_, Err(e)) => {
                        report.skipped.push((line.to_string(), e));
                        continue;
                    }
                };
                if catalog.by_name(&name).is_some() {
                    report
                        .skipped
                        .push((name, "already resident (startup graph?)".to_string()));
                    continue;
                }
                match catalog.load(&name, &snap) {
                    Ok(_) => report.loaded.push(name),
                    Err(e) => report.skipped.push((name, e.to_string())),
                }
            }
            "plan" => match parse_plan_line(&fields[1..]) {
                Ok((name, plan)) => match catalog.by_name(&name) {
                    Some(entry) => match entry.plans.install(plan.clone()) {
                        Ok(()) => report.plans.push((name, plan.family.as_str().to_string())),
                        Err(e) => report.skipped.push((name, e.to_string())),
                    },
                    None => report
                        .skipped
                        .push((name, "plan for a graph that did not restore".to_string())),
                },
                Err(e) => report.skipped.push((line.to_string(), e)),
            },
            // Unknown kinds (future versions) and short lines: skip, note.
            _ => report
                .skipped
                .push((line.to_string(), "unrecognized record".to_string())),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_graph::gen::GraphGen;
    use priograph_graph::{GraphSnapshot, LoadMode};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn escaping_roundtrips_reserved_characters() {
        for s in [
            "plain",
            "has\ttab",
            "has\nnewline",
            "has%percent",
            "mix%\t\r\n%09",
        ] {
            let escaped = escape(s);
            assert!(!escaped.contains('\t') && !escaped.contains('\n'));
            assert_eq!(unescape(&escaped).unwrap(), s);
        }
        assert!(unescape("truncated%2").is_err());
        assert!(unescape("bad%zz").is_err());
    }

    #[test]
    fn manifest_roundtrips_graphs_and_tuned_plans() {
        let g = GraphGen::road_grid(6, 6).seed(2).build();
        let snap = temp_path("priograph_manifest_rt.snap");
        GraphSnapshot::write(&g, &snap).unwrap();

        // Source catalog: one snapshot-backed graph with a tuned plan, one
        // in-process graph (not persistable).
        let catalog = Catalog::default();
        let entry = catalog.load("roads", snap.to_str().unwrap()).unwrap();
        catalog
            .insert("ephemeral", GraphGen::path(4).build(), LoadMode::Owned)
            .unwrap();
        let tuned = QueryPlan::new(
            AlgoFamily::Sssp,
            Schedule::eager_with_fusion(128),
            PlanOrigin::Tuned { trials: 17 },
        );
        entry.plans.install(tuned.clone()).unwrap();

        let manifest = temp_path("priograph_manifest_rt.manifest");
        write(&catalog, &manifest).unwrap();

        // Fresh catalog restores the snapshot-backed entry and its plan.
        let restored = Catalog::default();
        let report = restore(&restored, &manifest);
        assert_eq!(report.loaded, vec!["roads".to_string()]);
        assert_eq!(
            report.plans,
            vec![("roads".to_string(), "sssp".to_string())]
        );
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);
        assert!(
            restored.by_name("ephemeral").is_none(),
            "no path, no restore"
        );
        let entry = restored.by_name("roads").unwrap();
        assert_eq!(entry.plans.plan_for(AlgoFamily::Sssp), tuned);
        assert_eq!(entry.graph.edge_triples(), g.edge_triples());

        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn restore_is_lenient_about_rot() {
        let manifest = temp_path("priograph_manifest_rot.manifest");
        std::fs::write(
            &manifest,
            format!(
                "{MANIFEST_HEADER}\n\
                 graph\tgone\t/nonexistent/file.snap\n\
                 plan\tgone\tsssp\tlazy\t8\t1000\t128\tSparsePush\t64\t5\n\
                 plan\tbroken\tnot-a-family\tlazy\t8\t1000\t128\tSparsePush\t64\t5\n\
                 future-record\twhatever\n"
            ),
        )
        .unwrap();
        let catalog = Catalog::default();
        let report = restore(&catalog, &manifest);
        assert!(report.loaded.is_empty() && report.plans.is_empty());
        assert_eq!(report.skipped.len(), 4);
        assert!(catalog.is_empty());
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn non_positive_representation_knobs_are_rejected_per_line() {
        // The engines assert on zero buckets/grain; a corrupt manifest must
        // fail at parse time, not panic (or abort via a negative-to-usize
        // wrap) on the dispatcher at query time.
        let manifest = temp_path("priograph_manifest_badknobs.manifest");
        std::fs::write(
            &manifest,
            format!(
                "{MANIFEST_HEADER}\n\
                 plan\tg\tsssp\tlazy\t8\t1000\t0\tSparsePush\t64\t5\n\
                 plan\tg\tsssp\tlazy\t8\t-1\t128\tSparsePush\t64\t5\n\
                 plan\tg\tsssp\tlazy\t8\t1000\t128\tSparsePush\t-3\t5\n\
                 plan\tg\tsssp\tlazy\t8\t1000\t128\tSparsePush\t64\t-5\n"
            ),
        )
        .unwrap();
        let catalog = Catalog::default();
        let report = restore(&catalog, &manifest);
        assert_eq!(report.skipped.len(), 4, "{:?}", report.skipped);
        assert!(report.plans.is_empty());
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn missing_manifest_is_a_clean_fresh_start() {
        let catalog = Catalog::default();
        let report = restore(
            &catalog,
            &temp_path("priograph_manifest_never_written.manifest"),
        );
        assert_eq!(report, RestoreReport::default());
    }

    #[test]
    fn attach_manifest_persists_later_changes() {
        let g = GraphGen::road_grid(5, 5).seed(3).build();
        let snap = temp_path("priograph_manifest_attach.snap");
        GraphSnapshot::write(&g, &snap).unwrap();
        let manifest = temp_path("priograph_manifest_attach.manifest");
        let _ = std::fs::remove_file(&manifest);

        let catalog = Catalog::default();
        let report = catalog.attach_manifest(&manifest);
        assert_eq!(report, RestoreReport::default());
        catalog.load("roads", snap.to_str().unwrap()).unwrap();
        // The load persisted: a second catalog restores it.
        let rebooted = Catalog::default();
        let report = rebooted.attach_manifest(&manifest);
        assert_eq!(report.loaded, vec!["roads".to_string()]);

        // Unload persists too.
        catalog.unload("roads").unwrap();
        let rebooted = Catalog::default();
        assert!(rebooted.attach_manifest(&manifest).loaded.is_empty());

        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn malformed_header_is_reported_not_fatal() {
        let manifest = temp_path("priograph_manifest_badheader.manifest");
        std::fs::write(&manifest, "some-other-format\n").unwrap();
        let catalog = Catalog::default();
        let report = restore(&catalog, &manifest);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("header"));
        let _ = std::fs::remove_file(&manifest);
    }
}
