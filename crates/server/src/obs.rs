//! Server-side telemetry: maps `priograph-telemetry` primitives onto the
//! named counters and series the `StatsV2` frame reports
//! (`docs/PROTOCOL.md` §4.3, `docs/ARCHITECTURE.md` §8).
//!
//! One [`Telemetry`] lives in the server's `Shared` state. The hot paths
//! write to it with relaxed atomics only:
//!
//! * the **executor workers** fold each answered query's [`QuerySpan`]
//!   into the global per-phase histograms and a per-(graph, op) breakdown
//!   (the per-key map is behind a mutex, but each worker slot holds a
//!   lock-free local cache of the `Arc`s — the lock is taken once per new
//!   (graph, op) pair, never in steady state);
//! * the **engines** report round boundaries through the
//!   [`RoundObserver`] impl (three relaxed atomic ops per round);
//! * **connection threads** count error kinds at the single choke point
//!   where responses hit the wire, so every [`ErrorKind`] is counted
//!   exactly once no matter which stage produced it.
//!
//! Reading ([`Telemetry::stats_v2`]) allocates and walks snapshots — it is
//! a reporting path, taken per `StatsV2` request or metrics-log tick.

use crate::protocol::{ErrorKind, GraphId, QueryOp, Response, SeriesSummary, ServerStats, StatsV2};
use priograph_core::engine::{RoundInfo, RoundObserver};
use priograph_parallel::ExecutorStats;
use priograph_telemetry::{LatencyHistogram, PhaseHistograms, QuerySpan, SlowRing, Summary};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// How many worst-latency queries the slow ring retains.
pub(crate) const SLOW_RING_CAPACITY: usize = 8;

/// One retained worst-case query: where it ran, its full phase breakdown,
/// and the plan it executed under.
#[derive(Clone, Debug)]
pub(crate) struct SlowQuery {
    /// Catalog id of the graph the query ran against.
    pub graph: GraphId,
    /// The operation.
    pub op: QueryOp,
    /// Phase breakdown (microseconds).
    pub span: QuerySpan,
    /// Human-readable plan/schedule the query executed under
    /// (`"point-serial"` for PPSP batch members).
    pub plan: String,
}

/// All server telemetry state: named counters, phase histograms (global
/// and per-(graph, op)), the engine round profile, and the slow-query
/// ring. See the module docs for the write paths.
#[derive(Debug)]
pub(crate) struct Telemetry {
    /// Global per-phase latency histograms over every answered query.
    phases: PhaseHistograms,
    /// Per-(graph, op) phase histograms. Written through [`SeriesCache`]
    /// so the dispatcher locks only on first sight of a key. Entries are
    /// kept for the server's lifetime: catalog ids are never reused, so
    /// the map is bounded by (graphs ever loaded) × 4 ops.
    per_key: Mutex<HashMap<(GraphId, QueryOp), Arc<PhaseHistograms>>>,
    /// Engine rounds observed across all full-vector queries.
    engine_rounds: AtomicU64,
    /// Edge relaxations observed across all engine rounds.
    engine_relaxations: AtomicU64,
    /// Distribution of engine frontier sizes (entries, not microseconds).
    frontier: LatencyHistogram,
    /// Per-[`ErrorKind`] counts, indexed by wire discriminant; bumped at
    /// the wire choke points (see [`Telemetry::count_response_errors`]).
    error_kinds: [AtomicU64; ErrorKind::ALL.len()],
    /// Requests refused with `shutting-down` because they arrived after
    /// the drain began (previously uncounted — the PR 8 counter audit).
    drain_rejections: AtomicU64,
    /// The worst [`SLOW_RING_CAPACITY`] queries by total latency.
    slow: SlowRing<SlowQuery>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            phases: PhaseHistograms::new(),
            per_key: Mutex::new(HashMap::new()),
            engine_rounds: AtomicU64::new(0),
            engine_relaxations: AtomicU64::new(0),
            frontier: LatencyHistogram::new(),
            error_kinds: [const { AtomicU64::new(0) }; ErrorKind::ALL.len()],
            drain_rejections: AtomicU64::new(0),
            slow: SlowRing::new(SLOW_RING_CAPACITY),
        }
    }
}

impl Telemetry {
    /// Folds one answered query's span into the global phase histograms
    /// and its (graph, op) series. `series` is the cached per-key sink
    /// obtained from [`SeriesCache::sink`] — all histogram writes are
    /// relaxed atomics, no locks.
    pub(crate) fn record_span(&self, series: &PhaseHistograms, span: &QuerySpan) {
        self.phases.record(span);
        series.record(span);
    }

    /// Offers one query to the slow ring (lock-free below the admission
    /// floor; `make_plan` renders the plan string only if retained).
    pub(crate) fn offer_slow(
        &self,
        graph: GraphId,
        op: QueryOp,
        span: QuerySpan,
        make_plan: impl FnOnce() -> String,
    ) {
        self.slow.offer(span.total_us(), || SlowQuery {
            graph,
            op,
            span,
            plan: make_plan(),
        });
    }

    /// The retained worst queries, worst first.
    pub(crate) fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.snapshot().into_iter().map(|(_, q)| q).collect()
    }

    /// Counts every in-band error carried by `resp` (recursing into batch
    /// items) into the per-kind counters. Called exactly once per
    /// response at the points where frames are written, so each error the
    /// client sees moves exactly one kind counter.
    pub(crate) fn count_response_errors(&self, resp: &Response) {
        match resp {
            Response::Error { kind, .. } => self.count_error_kind(*kind),
            Response::Batch(items) => {
                for item in items {
                    self.count_response_errors(item);
                }
            }
            _ => {}
        }
    }

    /// Counts one error kind directly (for refusals encoded outside the
    /// normal response path, e.g. legacy-version payloads).
    pub(crate) fn count_error_kind(&self, kind: ErrorKind) {
        self.error_kinds[kind.to_u8() as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one drain-window refusal (also counted as
    /// `errors.shutting-down` by the wire choke point).
    pub(crate) fn count_drain_rejection(&self) {
        self.drain_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Value of the drain-rejection counter.
    pub(crate) fn drain_rejections(&self) -> u64 {
        self.drain_rejections.load(Ordering::Relaxed)
    }

    /// Count recorded for `kind`.
    pub(crate) fn error_kind_count(&self, kind: ErrorKind) -> u64 {
        self.error_kinds[kind.to_u8() as usize].load(Ordering::Relaxed)
    }

    /// Looks up (or creates) the shared per-(graph, op) histogram set.
    /// Reporting paths and the dispatcher's cache-miss path only.
    fn sink_for(&self, key: (GraphId, QueryOp)) -> Arc<PhaseHistograms> {
        let mut map = self.per_key.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_default())
    }

    /// Assembles the self-describing `StatsV2` frame: the legacy counters
    /// under their documented names, the new named counters (including the
    /// execution core's `sched.*` totals), and every latency series, all
    /// sorted by name.
    pub(crate) fn stats_v2(&self, legacy: &ServerStats, exec: ExecutorStats) -> StatsV2 {
        let mut counters: Vec<(String, u64)> = vec![
            ("num_vertices".to_string(), legacy.num_vertices),
            ("num_edges".to_string(), legacy.num_edges),
            ("threads".to_string(), legacy.threads),
            ("queries".to_string(), legacy.queries),
            ("batch_rounds".to_string(), legacy.batch_rounds),
            ("point_queries".to_string(), legacy.point_queries),
            ("full_queries".to_string(), legacy.full_queries),
            ("errors".to_string(), legacy.errors),
            ("graphs".to_string(), legacy.graphs),
            ("busy_rejections".to_string(), legacy.busy_rejections),
            ("tune_runs".to_string(), legacy.tune_runs),
            ("timeouts".to_string(), legacy.timeouts),
            (
                "rejected_connections".to_string(),
                legacy.rejected_connections,
            ),
            ("drain_rejections".to_string(), self.drain_rejections()),
            (
                "engine.rounds".to_string(),
                self.engine_rounds.load(Ordering::Relaxed),
            ),
            (
                "engine.relaxations".to_string(),
                self.engine_relaxations.load(Ordering::Relaxed),
            ),
            ("sched.executed".to_string(), exec.executed),
            ("sched.steals".to_string(), exec.steals),
            ("sched.gangs".to_string(), exec.gangs),
            ("sched.panicked".to_string(), exec.panicked),
        ];
        for kind in ErrorKind::ALL {
            counters.push((format!("errors.{kind}"), self.error_kind_count(kind)));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));

        let mut series: Vec<SeriesSummary> = Vec::new();
        let phase_summaries = self.phases.summaries();
        for (name, summary) in priograph_telemetry::PHASE_NAMES.iter().zip(phase_summaries) {
            series.push(named_summary(format!("phase.{name}"), summary));
        }
        series.push(named_summary(
            "engine.frontier".to_string(),
            self.frontier.summary(),
        ));
        {
            let map = self.per_key.lock().unwrap_or_else(PoisonError::into_inner);
            for ((graph, op), sink) in map.iter() {
                let op = op_slug(*op);
                for (name, summary) in priograph_telemetry::PHASE_NAMES
                    .iter()
                    .zip(sink.summaries())
                {
                    series.push(named_summary(format!("graph.{graph}.{op}.{name}"), summary));
                }
            }
        }
        series.sort_by(|a, b| a.name.cmp(&b.name));
        StatsV2 { counters, series }
    }

    /// One metrics-log line: a timestamped JSON object wrapping the
    /// `StatsV2` snapshot plus the current slow-query ring.
    pub(crate) fn metrics_json(
        &self,
        legacy: &ServerStats,
        exec: ExecutorStats,
        uptime_ms: u64,
    ) -> String {
        use std::fmt::Write as _;
        let stats = self.stats_v2(legacy, exec);
        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\"uptime_ms\":{uptime_ms},\"stats\":");
        out.push_str(&stats.to_json());
        out.push_str(",\"slow\":[");
        for (i, q) in self.slow_queries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"graph\":{},\"op\":\"{}\",\"queued_us\":{},\"planned_us\":{},\
                 \"executed_us\":{},\"responded_us\":{},\"total_us\":{},\"plan\":\"{}\"}}",
                q.graph,
                op_slug(q.op),
                q.span.queued_us,
                q.span.planned_us,
                q.span.executed_us,
                q.span.responded_us,
                q.span.total_us(),
                // Plan strings are schedule renderings (identifier-safe),
                // but escape quotes defensively.
                q.plan.replace('"', "'"),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Engine round profile: the [`RoundObserver`] the dispatcher passes into
/// full-vector query execution. Three relaxed atomic ops per synchronized
/// round — cheap enough to leave on for every production query.
impl RoundObserver for Telemetry {
    fn on_round(&self, info: &RoundInfo) {
        self.engine_rounds.fetch_add(1, Ordering::Relaxed);
        self.engine_relaxations
            .fetch_add(info.relaxations, Ordering::Relaxed);
        self.frontier.record_value(info.frontier as u64);
    }
}

/// Dispatcher-local cache of per-(graph, op) histogram `Arc`s: steady
/// state is a `HashMap` probe (no lock, no allocation); the shared map's
/// mutex is taken only the first time a key is seen. Evict with
/// [`SeriesCache::retain_graphs`] alongside the dispatcher's other
/// per-graph state.
#[derive(Debug, Default)]
pub(crate) struct SeriesCache {
    cache: HashMap<(GraphId, QueryOp), Arc<PhaseHistograms>>,
}

impl SeriesCache {
    /// The histogram sink for `key`, cloning out of the shared map only
    /// on first sight.
    pub(crate) fn sink(
        &mut self,
        telemetry: &Telemetry,
        key: (GraphId, QueryOp),
    ) -> &PhaseHistograms {
        self.cache
            .entry(key)
            .or_insert_with(|| telemetry.sink_for(key))
    }

    /// Drops cached sinks for graphs no longer resident (the shared map
    /// keeps the series for reporting; this only trims the cache).
    pub(crate) fn retain_graphs(&mut self, mut contains: impl FnMut(GraphId) -> bool) {
        self.cache.retain(|(graph, _), _| contains(*graph));
    }
}

/// Wire slug for an op in series names (lowercase, stable).
pub(crate) fn op_slug(op: QueryOp) -> &'static str {
    match op {
        QueryOp::Ppsp => "ppsp",
        QueryOp::Sssp => "sssp",
        QueryOp::Wbfs => "wbfs",
        QueryOp::KCore => "kcore",
    }
}

fn named_summary(name: String, s: Summary) -> SeriesSummary {
    SeriesSummary {
        name,
        count: s.count,
        p50_us: s.p50,
        p90_us: s.p90,
        p99_us: s.p99,
        p999_us: s.p999,
        max_us: s.max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_fold_into_global_and_per_key_series() {
        let t = Telemetry::default();
        let mut cache = SeriesCache::default();
        for i in 0..20 {
            let span = QuerySpan {
                queued_us: 10 + i,
                planned_us: 1,
                executed_us: 400,
                responded_us: 2,
            };
            let sink = cache.sink(&t, (3, QueryOp::Sssp));
            t.record_span(sink, &span);
        }
        let stats = t.stats_v2(&ServerStats::default(), ExecutorStats::default());
        assert_eq!(stats.series("phase.total").unwrap().count, 20);
        assert_eq!(stats.series("graph.3.sssp.total").unwrap().count, 20);
        assert_eq!(stats.series("graph.3.sssp.executed").unwrap().max_us, 400);
        // A key never queried produces no series.
        assert!(stats.series("graph.3.kcore.total").is_none());
    }

    #[test]
    fn error_kinds_count_through_batches_exactly_once() {
        let t = Telemetry::default();
        let resp = Response::Batch(vec![
            Response::error(ErrorKind::Timeout, "t"),
            Response::Distance {
                distance: Some(1),
                relaxations: 1,
            },
            Response::error(ErrorKind::Timeout, "t2"),
            Response::error(ErrorKind::BadVertex, "v"),
        ]);
        t.count_response_errors(&resp);
        assert_eq!(t.error_kind_count(ErrorKind::Timeout), 2);
        assert_eq!(t.error_kind_count(ErrorKind::BadVertex), 1);
        assert_eq!(t.error_kind_count(ErrorKind::Internal), 0);
        let stats = t.stats_v2(&ServerStats::default(), ExecutorStats::default());
        assert_eq!(stats.counter("errors.timeout"), Some(2));
        assert_eq!(stats.counter("errors.bad-vertex"), Some(1));
    }

    #[test]
    fn every_error_kind_moves_exactly_its_own_counter() {
        let t = Telemetry::default();
        for kind in ErrorKind::ALL {
            let before: Vec<u64> = ErrorKind::ALL
                .iter()
                .map(|k| t.error_kind_count(*k))
                .collect();
            t.count_response_errors(&Response::error(kind, "probe"));
            for (i, k) in ErrorKind::ALL.iter().enumerate() {
                let expected = before[i] + u64::from(*k == kind);
                assert_eq!(
                    t.error_kind_count(*k),
                    expected,
                    "counting {kind} moved the {k} counter"
                );
            }
        }
    }

    #[test]
    fn counters_and_series_are_sorted_by_name() {
        let t = Telemetry::default();
        let mut cache = SeriesCache::default();
        for key in [(1, QueryOp::Ppsp), (0, QueryOp::KCore), (0, QueryOp::Sssp)] {
            let sink = cache.sink(&t, key);
            t.record_span(sink, &QuerySpan::default());
        }
        let stats = t.stats_v2(&ServerStats::default(), ExecutorStats::default());
        let counter_names: Vec<&str> = stats.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = counter_names.clone();
        sorted.sort_unstable();
        assert_eq!(counter_names, sorted);
        let series_names: Vec<&str> = stats.series.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = series_names.clone();
        sorted.sort_unstable();
        assert_eq!(series_names, sorted);
        // Every error kind has a named counter even at zero.
        for kind in ErrorKind::ALL {
            assert!(stats.counter(&format!("errors.{kind}")).is_some());
        }
    }

    #[test]
    fn slow_ring_keeps_worst_queries_with_plans() {
        let t = Telemetry::default();
        for i in 0..50u64 {
            let span = QuerySpan {
                executed_us: i * 100,
                ..QuerySpan::default()
            };
            t.offer_slow(0, QueryOp::Ppsp, span, || format!("plan-{i}"));
        }
        let slow = t.slow_queries();
        assert_eq!(slow.len(), SLOW_RING_CAPACITY);
        assert_eq!(slow[0].span.executed_us, 4_900);
        assert_eq!(slow[0].plan, "plan-49");
        // Worst first.
        assert!(slow
            .windows(2)
            .all(|w| w[0].span.total_us() >= w[1].span.total_us()));
    }

    #[test]
    fn round_observer_feeds_engine_series() {
        let t = Telemetry::default();
        t.on_round(&RoundInfo {
            round: 1,
            bucket: 0,
            priority: 0,
            frontier: 128,
            relaxations: 1_000,
        });
        t.on_round(&RoundInfo {
            round: 2,
            bucket: 1,
            priority: 4,
            frontier: 64,
            relaxations: 500,
        });
        let stats = t.stats_v2(&ServerStats::default(), ExecutorStats::default());
        assert_eq!(stats.counter("engine.rounds"), Some(2));
        assert_eq!(stats.counter("engine.relaxations"), Some(1_500));
        let frontier = stats.series("engine.frontier").unwrap();
        assert_eq!(frontier.count, 2);
        assert_eq!(frontier.max_us, 128);
    }

    #[test]
    fn metrics_json_is_one_line_with_slow_entries() {
        let t = Telemetry::default();
        t.offer_slow(
            2,
            QueryOp::Sssp,
            QuerySpan {
                queued_us: 5,
                planned_us: 1,
                executed_us: 900,
                responded_us: 4,
            },
            || "lazy delta=32".to_string(),
        );
        let line = t.metrics_json(&ServerStats::default(), ExecutorStats::default(), 1234);
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"uptime_ms\":1234,\"stats\":{"));
        assert!(line.contains("\"slow\":[{\"graph\":2,\"op\":\"sssp\""));
        assert!(line.contains("\"total_us\":910"));
        assert!(line.contains("\"plan\":\"lazy delta=32\""));
        assert!(line.ends_with("]}"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }
}
