//! Textual graph sources shared by the server and client binaries.
//!
//! A spec is either a file (`--graph`, `--snapshot`) or a deterministic
//! generator string (`--gen`), so a client can rebuild the exact graph a
//! server resides over — which is what lets the CI smoke test verify served
//! distances against a locally computed serial reference.

use priograph_graph::gen::GraphGen;
use priograph_graph::{CsrGraph, MapOptions, SnapshotView};
use std::path::Path;

/// Builds a graph from a generator spec:
///
/// * `grid:SIDE[:SEED]` — square road grid (symmetric, coordinates,
///   metric weights);
/// * `rmat:SCALE:EDGE_FACTOR[:SEED]` — R-MAT social graph, weights
///   `[1, 1000)`;
/// * `path:N` — directed unit-weight path (degenerate but handy).
///
/// The default seed is 1; generation is fully deterministic per spec.
///
/// # Errors
///
/// Returns a description of the malformed spec.
pub fn graph_from_spec(spec: &str) -> Result<CsrGraph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str, what: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|e| format!("bad {what} in spec {spec:?}: {e}"))
    };
    match parts.as_slice() {
        ["grid", side] | ["grid", side, _] => {
            let side = num(side, "side")? as usize;
            if !(2..=4096).contains(&side) {
                return Err(format!(
                    "grid side must be in 2..=4096 in {spec:?} (16.7M vertices max)"
                ));
            }
            let seed = match parts.get(2) {
                Some(s) => num(s, "seed")?,
                None => 1,
            };
            Ok(GraphGen::road_grid(side, side).seed(seed).build())
        }
        ["rmat", scale, ef] | ["rmat", scale, ef, _] => {
            let scale = num(scale, "scale")? as u32;
            let ef = num(ef, "edge factor")? as u32;
            if scale > 24 {
                return Err(format!("rmat scale {scale} too large (max 24)"));
            }
            let seed = match parts.get(3) {
                Some(s) => num(s, "seed")?,
                None => 1,
            };
            Ok(GraphGen::rmat(scale, ef.max(1))
                .seed(seed)
                .weights_uniform(1, 1000)
                .build())
        }
        ["path", n] => {
            let n = num(n, "length")? as usize;
            if n > 1 << 24 {
                return Err(format!("path length {n} too large (max {})", 1 << 24));
            }
            Ok(GraphGen::path(n).build())
        }
        _ => Err(format!(
            "unrecognized gen spec {spec:?} (want grid:SIDE[:SEED], \
             rmat:SCALE:EF[:SEED], or path:N)"
        )),
    }
}

/// The graph sources a binary accepts (exactly one must be given).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphSource {
    /// Snapshot file ([`priograph_graph::GraphSnapshot`] format).
    pub snapshot: Option<String>,
    /// Edge-list or DIMACS `.gr` file.
    pub graph: Option<String>,
    /// Generator spec for [`graph_from_spec`].
    pub gen_spec: Option<String>,
    /// Open snapshots with `MAP_POPULATE` + sequential advice
    /// (`--mmap-populate`): a cold-cache readahead knob, never a semantic
    /// one.
    pub mmap_populate: bool,
}

impl GraphSource {
    /// True when no source was specified.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.graph.is_none() && self.gen_spec.is_none()
    }

    /// Loads the graph, preferring snapshot > file > generator.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of whichever source failed.
    pub fn load(&self) -> Result<CsrGraph, String> {
        let given = [&self.snapshot, &self.graph, &self.gen_spec]
            .iter()
            .filter(|o| o.is_some())
            .count();
        if given != 1 {
            return Err(format!(
                "need exactly one of --snapshot / --graph / --gen, got {given}"
            ));
        }
        if let Some(path) = &self.snapshot {
            // Snapshots open through the view so a PSNAPv2 file is
            // memory-mapped zero-copy (v1 falls back to the copying path);
            // the graph's load mode is visible via CsrGraph::is_mapped.
            let options = if self.mmap_populate {
                MapOptions::populate_sequential()
            } else {
                MapOptions::default()
            };
            return SnapshotView::open_with(Path::new(path), options)
                .map(SnapshotView::into_graph)
                .map_err(|e| format!("{path}: {e}"));
        }
        if let Some(path) = &self.graph {
            return priograph_graph::io::load_graph(Path::new(path))
                .map_err(|e| format!("{path}: {e}"));
        }
        graph_from_spec(self.gen_spec.as_deref().unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_graph::GraphSnapshot;

    #[test]
    fn grid_and_rmat_specs_build_deterministically() {
        let a = graph_from_spec("grid:6").unwrap();
        let b = graph_from_spec("grid:6:1").unwrap();
        assert_eq!(a.edge_triples(), b.edge_triples());
        assert!(a.is_symmetric() && a.coords().is_some());
        let c = graph_from_spec("rmat:6:4:7").unwrap();
        assert_eq!(c.num_vertices(), 64);
        let d = graph_from_spec("path:5").unwrap();
        assert_eq!(d.num_edges(), 4);
    }

    #[test]
    fn different_seeds_differ() {
        let a = graph_from_spec("grid:6:1").unwrap();
        let b = graph_from_spec("grid:6:2").unwrap();
        assert_ne!(a.edge_triples(), b.edge_triples());
    }

    #[test]
    fn bad_specs_error() {
        assert!(graph_from_spec("").is_err());
        assert!(graph_from_spec("grid:1").is_err());
        assert!(graph_from_spec("grid:x").is_err());
        assert!(graph_from_spec("rmat:99:8").is_err());
        assert!(graph_from_spec("torus:4").is_err());
        // Oversized operands are clean spec errors, not OOM attempts.
        assert!(graph_from_spec("grid:2000000000").is_err());
        assert!(graph_from_spec("grid:4097").is_err());
        assert!(graph_from_spec("path:999999999999").is_err());
    }

    #[test]
    fn source_requires_exactly_one_origin() {
        assert!(GraphSource::default().load().is_err());
        let both = GraphSource {
            snapshot: Some("a".into()),
            gen_spec: Some("grid:4".into()),
            ..GraphSource::default()
        };
        assert!(both.load().is_err());
        let gen = GraphSource {
            gen_spec: Some("grid:4".into()),
            ..GraphSource::default()
        };
        assert_eq!(gen.load().unwrap().num_vertices(), 16);
    }

    #[test]
    fn snapshot_source_roundtrips() {
        let g = graph_from_spec("grid:5").unwrap();
        let path = std::env::temp_dir().join("priograph_spec_test.snap");
        GraphSnapshot::write(&g, &path).unwrap();
        let src = GraphSource {
            snapshot: Some(path.display().to_string()),
            ..GraphSource::default()
        };
        assert_eq!(src.load().unwrap().edge_triples(), g.edge_triples());
        let _ = std::fs::remove_file(path);
    }
}
