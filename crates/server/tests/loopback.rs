//! End-to-end serving test over a loopback socket: a snapshot-loaded graph,
//! a mixed batch of 100+ PPSP/SSSP/wBFS/k-core queries, and serial
//! references — at more than one thread count (ISSUE 3 acceptance).

use priograph_algorithms::serial::{dijkstra, kcore_serial};
use priograph_algorithms::UNREACHABLE;
use priograph_graph::gen::GraphGen;
use priograph_graph::{CsrGraph, GraphSnapshot};
use priograph_serve::client::Client;
use priograph_serve::protocol::{Query, QueryOp, Response, WireSchedule, WireStrategy};
use priograph_serve::server::{serve, ServerConfig};
use std::collections::HashMap;

/// Builds the mixed batch: 84 point queries, 20 full-vector queries (SSSP
/// and wBFS), and a k-core — 105 queries total, deterministic.
fn mixed_batch(n: u32) -> Vec<Query> {
    let mut queries = Vec::new();
    for i in 0..84u64 {
        let source = ((i * 37 + 11) % n as u64) as u32;
        let target = ((i * 101 + 5) % n as u64) as u32;
        let mut q = Query::ppsp(source, target);
        if i % 7 == 3 {
            // Exercise schedule selection on the wire; the answer must not
            // change (schedules are performance knobs, not semantics).
            q.schedule = WireSchedule {
                strategy: WireStrategy::EagerFusion,
                delta: 64,
            };
        }
        queries.push(q);
    }
    for i in 0..20u64 {
        let source = ((i * 53 + 2) % n as u64) as u32;
        if i % 2 == 0 {
            queries.push(Query::sssp(source));
        } else {
            queries.push(Query::wbfs(source));
        }
    }
    queries.push(Query::kcore());
    queries
}

fn reference_for<'a>(
    graph: &CsrGraph,
    cache: &'a mut HashMap<u32, Vec<i64>>,
    source: u32,
) -> &'a Vec<i64> {
    cache
        .entry(source)
        .or_insert_with(|| dijkstra(graph, source))
}

#[test]
fn snapshot_loaded_server_matches_serial_references_across_thread_counts() {
    // Snapshot round: the resident graph must come out of the binary
    // snapshot, not the generator.
    let built = GraphGen::road_grid(14, 14).seed(9).build();
    let snap_path = std::env::temp_dir().join("priograph_loopback.snap");
    GraphSnapshot::write(&built, &snap_path).expect("write snapshot");
    let graph = GraphSnapshot::load(&snap_path).expect("load snapshot");
    let _ = std::fs::remove_file(&snap_path);
    assert_eq!(graph.edge_triples(), built.edge_triples());

    let n = graph.num_vertices() as u32;
    let queries = mixed_batch(n);
    assert!(queries.len() >= 100, "acceptance demands >= 100 queries");
    let coreness = kcore_serial(&graph); // grid graphs are already symmetric
    let mut dijkstra_cache: HashMap<u32, Vec<i64>> = HashMap::new();

    for threads in [1usize, 4] {
        let handle = serve(
            graph.clone(),
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let responses = client.batch(queries.clone()).expect("batch");
        assert_eq!(responses.len(), queries.len());
        for (query, response) in queries.iter().zip(&responses) {
            match (query.op, response) {
                (QueryOp::Ppsp, Response::Distance { distance, .. }) => {
                    let dist = reference_for(&graph, &mut dijkstra_cache, query.source);
                    let expected = (dist[query.target as usize] < UNREACHABLE)
                        .then_some(dist[query.target as usize]);
                    assert_eq!(
                        *distance, expected,
                        "threads={threads} ppsp {}->{}",
                        query.source, query.target
                    );
                }
                (QueryOp::Sssp | QueryOp::Wbfs, Response::DistVec(served)) => {
                    let dist = reference_for(&graph, &mut dijkstra_cache, query.source);
                    assert_eq!(
                        served, dist,
                        "threads={threads} full query from {}",
                        query.source
                    );
                }
                (QueryOp::KCore, Response::Coreness(served)) => {
                    assert_eq!(served, &coreness, "threads={threads} k-core");
                }
                (op, other) => panic!("threads={threads} {op:?} got {other:?}"),
            }
        }

        let stats = client.stats().expect("stats");
        assert_eq!(stats.queries, queries.len() as u64);
        assert_eq!(stats.point_queries, 84);
        assert_eq!(stats.full_queries, 21);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.threads, threads as u64);
        handle.stop();
    }
}

#[test]
fn concurrent_connections_are_batched_together() {
    // Several clients firing at once must all get correct answers — this is
    // the cross-connection grouping path of the dispatcher.
    let graph = GraphGen::rmat(7, 6).seed(3).weights_uniform(1, 50).build();
    let n = graph.num_vertices() as u32;
    let reference = dijkstra(&graph, 0);
    let handle = serve(
        graph,
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for t in 0..6u32 {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..20u32 {
                    let target = (t * 31 + i * 7) % n;
                    match client.query(Query::ppsp(0, target)).expect("query") {
                        Response::Distance { distance, .. } => {
                            let expected = (reference[target as usize] < UNREACHABLE)
                                .then_some(reference[target as usize]);
                            assert_eq!(distance, expected, "conn {t} target {target}");
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries, 120);
    // Batching is opportunistic (it depends on arrival timing), so the only
    // hard guarantee is that rounds never exceed queries; with 6 concurrent
    // spammers some grouping is overwhelmingly likely, but not asserted.
    assert!(stats.batch_rounds <= stats.queries);
    handle.stop();
}
