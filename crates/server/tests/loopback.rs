//! End-to-end serving tests over a loopback socket: snapshot-loaded graphs,
//! mixed batches of 100+ PPSP/SSSP/wBFS/k-core queries, and serial
//! references — at more than one thread count (ISSUE 3 acceptance), plus
//! multi-graph residency routing under concurrent clients and wire-level
//! catalog management (ISSUE 4 acceptance).

use priograph_algorithms::serial::{dijkstra, kcore_serial};
use priograph_algorithms::UNREACHABLE;
use priograph_graph::gen::GraphGen;
use priograph_graph::{CsrGraph, GraphSnapshot, LoadMode, SnapshotView};
use priograph_serve::client::Client;
use priograph_serve::protocol::{ErrorKind, Query, QueryOp, Response, WireSchedule, WireStrategy};
use priograph_serve::server::{serve, serve_named, ServerConfig};
use std::collections::HashMap;

/// Builds the mixed batch: 84 point queries, 20 full-vector queries (SSSP
/// and wBFS), and a k-core — 105 queries total, deterministic.
fn mixed_batch(n: u32) -> Vec<Query> {
    let mut queries = Vec::new();
    for i in 0..84u64 {
        let source = ((i * 37 + 11) % n as u64) as u32;
        let target = ((i * 101 + 5) % n as u64) as u32;
        let mut q = Query::ppsp(source, target);
        if i % 7 == 3 {
            // Exercise schedule selection on the wire; the answer must not
            // change (schedules are performance knobs, not semantics).
            q.schedule = WireSchedule {
                strategy: WireStrategy::EagerFusion,
                delta: 64,
            };
        }
        queries.push(q);
    }
    for i in 0..20u64 {
        let source = ((i * 53 + 2) % n as u64) as u32;
        if i % 2 == 0 {
            queries.push(Query::sssp(source));
        } else {
            queries.push(Query::wbfs(source));
        }
    }
    queries.push(Query::kcore());
    queries
}

fn reference_for<'a>(
    graph: &CsrGraph,
    cache: &'a mut HashMap<u32, Vec<i64>>,
    source: u32,
) -> &'a Vec<i64> {
    cache
        .entry(source)
        .or_insert_with(|| dijkstra(graph, source))
}

#[test]
fn snapshot_loaded_server_matches_serial_references_across_thread_counts() {
    // Snapshot round: the resident graph must come out of the binary
    // snapshot, not the generator.
    let built = GraphGen::road_grid(14, 14).seed(9).build();
    let snap_path = std::env::temp_dir().join("priograph_loopback.snap");
    GraphSnapshot::write(&built, &snap_path).expect("write snapshot");
    let graph = GraphSnapshot::load(&snap_path).expect("load snapshot");
    let _ = std::fs::remove_file(&snap_path);
    assert_eq!(graph.edge_triples(), built.edge_triples());

    let n = graph.num_vertices() as u32;
    let queries = mixed_batch(n);
    assert!(queries.len() >= 100, "acceptance demands >= 100 queries");
    let coreness = kcore_serial(&graph); // grid graphs are already symmetric
    let mut dijkstra_cache: HashMap<u32, Vec<i64>> = HashMap::new();

    for threads in [1usize, 4] {
        let handle = serve(
            graph.clone(),
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let responses = client.batch(queries.clone()).expect("batch");
        assert_eq!(responses.len(), queries.len());
        for (query, response) in queries.iter().zip(&responses) {
            match (query.op, response) {
                (QueryOp::Ppsp, Response::Distance { distance, .. }) => {
                    let dist = reference_for(&graph, &mut dijkstra_cache, query.source);
                    let expected = (dist[query.target as usize] < UNREACHABLE)
                        .then_some(dist[query.target as usize]);
                    assert_eq!(
                        *distance, expected,
                        "threads={threads} ppsp {}->{}",
                        query.source, query.target
                    );
                }
                (QueryOp::Sssp | QueryOp::Wbfs, Response::DistVec(served)) => {
                    let dist = reference_for(&graph, &mut dijkstra_cache, query.source);
                    assert_eq!(
                        served, dist,
                        "threads={threads} full query from {}",
                        query.source
                    );
                }
                (QueryOp::KCore, Response::Coreness(served)) => {
                    assert_eq!(served, &coreness, "threads={threads} k-core");
                }
                (op, other) => panic!("threads={threads} {op:?} got {other:?}"),
            }
        }

        let stats = client.stats().expect("stats");
        assert_eq!(stats.queries, queries.len() as u64);
        assert_eq!(stats.point_queries, 84);
        assert_eq!(stats.full_queries, 21);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.threads, threads as u64);
        handle.stop();
    }
}

/// Two structurally different resident graphs; queries carrying graph ids
/// must route to the right one under concurrent clients, at threads {1, 4},
/// with every answer equal to the per-graph serial reference.
#[test]
fn two_resident_graphs_route_queries_correctly_under_concurrency() {
    // Deliberately different families AND different sizes, so a misrouted
    // query is overwhelmingly likely to produce a wrong distance or an
    // out-of-range error rather than a silent coincidence.
    let roads = GraphGen::road_grid(12, 12).seed(3).build();
    let social = GraphGen::rmat(7, 6).seed(8).weights_uniform(1, 60).build();
    let n_roads = roads.num_vertices() as u32;
    let n_social = social.num_vertices() as u32;
    let refs: [Vec<Vec<i64>>; 2] = [
        (0..4).map(|s| dijkstra(&roads, s * 17)).collect(),
        (0..4).map(|s| dijkstra(&social, s * 17)).collect(),
    ];

    for threads in [1usize, 4] {
        let handle = serve_named(
            vec![
                ("roads".to_string(), roads.clone()),
                ("social".to_string(), social.clone()),
            ],
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = handle.addr();

        std::thread::scope(|scope| {
            for conn in 0..6u32 {
                let refs = &refs;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..25u32 {
                        // Alternate graphs within one connection.
                        let graph_id = (conn + i) % 2;
                        let (n, source) = if graph_id == 0 {
                            (n_roads, ((conn + i) % 4) * 17)
                        } else {
                            (n_social, ((conn + i) % 4) * 17)
                        };
                        let target = (conn * 31 + i * 13) % n;
                        let query = Query::ppsp(source, target).on_graph(graph_id);
                        match client.query(query).expect("query") {
                            Response::Distance { distance, .. } => {
                                let dist = &refs[graph_id as usize][(source / 17) as usize];
                                let expected = (dist[target as usize] < UNREACHABLE)
                                    .then_some(dist[target as usize]);
                                assert_eq!(
                                    distance, expected,
                                    "threads={threads} conn={conn} graph={graph_id} \
                                     {source}->{target}"
                                );
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                });
            }
        });

        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.queries, 150);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.graphs, 2);
        let graphs = client.list_graphs().expect("list");
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[0].name, "roads");
        assert_eq!(graphs[1].name, "social");
        assert_eq!(graphs[0].vertices, n_roads as u64);
        assert_eq!(graphs[1].vertices, n_social as u64);
        // Per-graph counters: every query landed somewhere, split 75/75.
        assert_eq!(graphs[0].queries + graphs[1].queries, 150);
        assert!(graphs[0].queries > 0 && graphs[1].queries > 0);
        assert_eq!(graphs[0].resident_bytes, roads.resident_bytes());
        handle.stop();
    }
}

/// Full catalog lifecycle over the wire: load a PSNAPv2 snapshot (mmap
/// mode), query it by resolved id, then unload and observe the typed error.
#[test]
fn wire_catalog_load_query_unload_roundtrip() {
    let base = GraphGen::road_grid(9, 9).seed(5).build();
    let extra = GraphGen::road_grid(11, 11).seed(6).build();
    let snap_path = std::env::temp_dir().join("priograph_loopback_catalog.snap");
    GraphSnapshot::write(&extra, &snap_path).expect("write snapshot");
    // Sanity: the file is the zero-copy format.
    let view = SnapshotView::open(&snap_path).expect("open view");
    assert_eq!(view.version(), 2);
    drop(view);

    let handle = serve(
        base,
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let info = client
        .load_graph("extra", snap_path.to_str().unwrap())
        .expect("load over the wire");
    assert_eq!(info.vertices, 121);
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    assert_eq!(info.mode, LoadMode::Mapped, "v2 loads zero-copy");
    let _ = std::fs::remove_file(&snap_path);

    // Duplicate name: typed refusal.
    match client.load_graph("extra", "/irrelevant.snap").unwrap_err() {
        priograph_serve::WireError::Remote { kind, .. } => {
            assert_eq!(kind, ErrorKind::BadRequest)
        }
        other => panic!("expected Remote, got {other:?}"),
    }

    // Queries against the freshly loaded graph match its serial reference.
    let reference = dijkstra(&extra, 0);
    for target in [1u32, 60, 120] {
        match client
            .query(Query::ppsp(0, target).on_graph(info.id))
            .unwrap()
        {
            Response::Distance { distance, .. } => {
                let expected = (reference[target as usize] < UNREACHABLE)
                    .then_some(reference[target as usize]);
                assert_eq!(distance, expected, "0->{target}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    client.unload_graph("extra").expect("unload");
    match client.query(Query::ppsp(0, 1).on_graph(info.id)).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownGraph),
        other => panic!("expected UnknownGraph, got {other:?}"),
    }
    assert!(client
        .list_graphs()
        .unwrap()
        .iter()
        .all(|g| g.name != "extra"));
    // Unloading again: typed unknown-name error.
    assert!(client.unload_graph("extra").is_err());
    handle.stop();
}

#[test]
fn concurrent_connections_are_batched_together() {
    // Several clients firing at once must all get correct answers — this is
    // the cross-connection grouping path of the dispatcher.
    let graph = GraphGen::rmat(7, 6).seed(3).weights_uniform(1, 50).build();
    let n = graph.num_vertices() as u32;
    let reference = dijkstra(&graph, 0);
    let handle = serve(
        graph,
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for t in 0..6u32 {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..20u32 {
                    let target = (t * 31 + i * 7) % n;
                    match client.query(Query::ppsp(0, target)).expect("query") {
                        Response::Distance { distance, .. } => {
                            let expected = (reference[target as usize] < UNREACHABLE)
                                .then_some(reference[target as usize]);
                            assert_eq!(distance, expected, "conn {t} target {target}");
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries, 120);
    // Batching is opportunistic (it depends on arrival timing), so the only
    // hard guarantee is that rounds never exceed queries; with 6 concurrent
    // spammers some grouping is overwhelmingly likely, but not asserted.
    assert!(stats.batch_rounds <= stats.queries);
    handle.stop();
}

/// ISSUE 5 acceptance (a): after `TuneGraph`, point and full-vector queries
/// for that graph execute under the installed plan — observable via
/// `ListGraphs` (origin flips to tuned, plan equals the tune outcome's) and
/// server stats (`tune_runs`) — with every answer still equal to the serial
/// references.
#[test]
fn tuned_plans_govern_unpinned_queries_with_correct_answers() {
    use priograph_serve::protocol::WirePlanOrigin;

    let roads = GraphGen::road_grid(12, 12).seed(4).build();
    let n = roads.num_vertices() as u32;
    let coreness = kcore_serial(&roads);
    let mut dijkstra_cache: HashMap<u32, Vec<i64>> = HashMap::new();

    let handle = serve(
        roads.clone(),
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Before tuning: every plan is the heuristic seed.
    let before = client.list_graphs().expect("list");
    assert!(before[0]
        .plans
        .iter()
        .all(|p| p.origin == WirePlanOrigin::Heuristic));

    // Tune SSSP and k-core with small budgets on the dispatcher's pool.
    let sssp_outcome = client.tune_graph(0, QueryOp::Sssp, 6).expect("tune sssp");
    let kcore_outcome = client.tune_graph(0, QueryOp::KCore, 4).expect("tune kcore");

    // The installed plans are exactly what the tune outcomes reported.
    let after = client.list_graphs().expect("list");
    let sssp_plan = after[0].plan_for(QueryOp::Sssp).expect("sssp plan");
    assert_eq!(*sssp_plan, sssp_outcome.plan);
    assert!(matches!(sssp_plan.origin, WirePlanOrigin::Tuned { .. }));
    let kcore_plan = after[0].plan_for(QueryOp::KCore).expect("kcore plan");
    assert_eq!(*kcore_plan, kcore_outcome.plan);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.tune_runs, 2);

    // Unpinned queries now run under the installed plans; answers must
    // still match serial references (plans are performance, not
    // semantics). One pinned query rides along to prove the bypass lane
    // stays open.
    let mut queries: Vec<Query> = Vec::new();
    for i in 0..30u64 {
        let source = ((i * 37 + 3) % n as u64) as u32;
        let target = ((i * 89 + 7) % n as u64) as u32;
        queries.push(Query::ppsp(source, target));
    }
    for i in 0..6u64 {
        queries.push(Query::sssp(((i * 53) % n as u64) as u32));
    }
    queries.push(Query::kcore());
    let mut pinned = Query::sssp(1);
    pinned.schedule = WireSchedule {
        strategy: WireStrategy::EagerFusion,
        delta: 16,
    };
    queries.push(pinned);

    let responses = client.batch(queries.clone()).expect("batch");
    for (query, response) in queries.iter().zip(&responses) {
        match (query.op, response) {
            (QueryOp::Ppsp, Response::Distance { distance, .. }) => {
                let dist = reference_for(&roads, &mut dijkstra_cache, query.source);
                let expected = (dist[query.target as usize] < UNREACHABLE)
                    .then_some(dist[query.target as usize]);
                assert_eq!(
                    *distance, expected,
                    "ppsp {}->{}",
                    query.source, query.target
                );
            }
            (QueryOp::Sssp, Response::DistVec(served)) => {
                let dist = reference_for(&roads, &mut dijkstra_cache, query.source);
                assert_eq!(served, dist, "sssp from {}", query.source);
            }
            (QueryOp::KCore, Response::Coreness(served)) => {
                assert_eq!(served, &coreness);
            }
            (op, other) => panic!("{op:?} got {other:?}"),
        }
    }
    handle.stop();
}

/// ISSUE 5 acceptance (b): with two resident graphs and one saturated, the
/// other graph's queries are admitted under per-graph quotas — the cold
/// graph never sees a `Busy`, while the hot graph's overflow is refused
/// with its own graph-scoped quota (not the global budget).
#[test]
fn saturated_graph_does_not_starve_the_cold_one() {
    use priograph_serve::protocol::BusyScope;

    // The hot graph is big enough that a quota-filling batch of full SSSP
    // runs holds its reservations for a while on one worker thread.
    let hot = GraphGen::road_grid(200, 200).seed(6).build();
    let cold = GraphGen::road_grid(8, 8).seed(7).build();
    let cold_ref = dijkstra(&cold, 0);

    // The scenario depends on catching the hot batch in flight, so allow a
    // few attempts before declaring failure; the cold-graph assertions are
    // unconditional in every attempt.
    let mut saw_hot_busy = false;
    'attempts: for _attempt in 0..3 {
        let handle = serve_named(
            vec![
                ("hot".to_string(), hot.clone()),
                ("cold".to_string(), cold.clone()),
            ],
            ServerConfig {
                threads: 1,
                pending_budget: 4096,
                graph_pending_budget: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = handle.addr();

        let saturator = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect saturator");
            // Exactly the hot graph's quota, all expensive full-vector
            // queries: the reservations stay held until the whole batch is
            // answered.
            let batch: Vec<Query> = (0..4).map(|i| Query::sssp(i * 9000)).collect();
            let responses = client.batch(batch).expect("hot batch");
            assert!(
                responses.iter().all(|r| matches!(r, Response::DistVec(_))),
                "hot batch must execute: {responses:?}"
            );
        });
        // Give the saturator's batch a head start into admission.
        std::thread::sleep(std::time::Duration::from_millis(5));

        // Phase 1: probe the hot graph. Busy decisions happen at admission
        // on the connection thread (they never wait on the dispatcher), so
        // while the saturator's reservations are held every probe bounces
        // with the graph scope. Probes that landed before saturation are
        // answered normally; keep probing.
        let mut prober = Client::connect(addr).expect("connect prober");
        for _ in 0..1000u32 {
            match prober
                .query(Query::ppsp(0, 1).on_graph(0))
                .expect("hot query")
            {
                Response::Busy {
                    scope,
                    budget,
                    retry_after_ms,
                    ..
                } => {
                    assert_eq!(scope, BusyScope::Graph(0));
                    assert_eq!(budget, 4);
                    assert!(retry_after_ms >= 1);
                    saw_hot_busy = true;
                    break;
                }
                Response::Distance { .. } => {}
                other => panic!("hot query got {other:?}"),
            }
        }

        // Phase 2: with the hot graph saturated (just observed), the cold
        // graph must still be admitted — its quota is its own. The reply
        // may wait for the dispatcher to finish the hot round (latency is
        // shared; admission is not), but it must never be Busy.
        for i in 0..20u32 {
            let target = (i * 13) % 64;
            match prober
                .query(Query::ppsp(0, target).on_graph(1))
                .expect("cold query")
            {
                Response::Distance { distance, .. } => {
                    let expected = (cold_ref[target as usize] < UNREACHABLE)
                        .then_some(cold_ref[target as usize]);
                    assert_eq!(distance, expected, "cold answer {target}");
                }
                Response::Busy { scope, .. } => {
                    panic!("cold graph refused ({scope:?}) — per-graph quotas failed")
                }
                other => panic!("cold query got {other:?}"),
            }
        }
        saturator.join().expect("saturator");
        handle.stop();
        if saw_hot_busy {
            break 'attempts;
        }
    }
    assert!(
        saw_hot_busy,
        "never observed the hot graph's quota refusing while cold was admitted"
    );
}
