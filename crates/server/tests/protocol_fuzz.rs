//! Property tests for the wire protocol's decode hardening: **no byte
//! sequence a peer can send may panic a decoder or trick it into an
//! outsized allocation** — malformed input must come back as a typed
//! [`WireError`], never as a crash (docs/ARCHITECTURE.md §7, shed step 1).
//!
//! Four adversarial shapes, each over seeded random inputs:
//!
//! 1. uniform byte soup through [`Request::decode`], [`Response::decode`],
//!    and [`read_frame`];
//! 2. truncation sweeps — *every* proper prefix of a valid encoding must
//!    be rejected (and so must trailing garbage, which `Cursor::finish`
//!    exists to catch);
//! 3. single bit flips of valid encodings — decode may accept a mutant
//!    that is itself a valid message, but whatever it accepts must
//!    re-encode and re-decode to the same value (no half-parsed states);
//! 4. lying length prefixes — element counts and frame lengths far beyond
//!    the bytes actually present are refused up front, before any
//!    `Vec::with_capacity` sized from attacker-controlled numbers.

use priograph_serve::protocol::{
    read_frame, BusyScope, ErrorKind, Query, QueryOp, Request, Response, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One arbitrary query from sampled integers (all four ops, any graph id,
/// any deadline budget).
fn sample_query(sel: u64, graph: u32, a: u32, b: u32, deadline: u32) -> Query {
    let q = match sel % 4 {
        0 => Query::ppsp(a, b),
        1 => Query::sssp(a),
        2 => Query::wbfs(a),
        _ => Query::kcore(),
    };
    q.on_graph(graph).with_deadline(deadline)
}

/// One arbitrary request covering every tag, from sampled integers.
fn sample_request(sel: u64, graph: u32, a: u32, b: u32, extra: u64) -> Request {
    let deadline = (extra >> 32) as u32;
    match sel % 8 {
        0 => Request::Query(sample_query(extra, graph, a, b, deadline)),
        1 => Request::Batch(
            (0..extra % 5)
                .map(|i| sample_query(sel.wrapping_add(i), graph, a, b, deadline))
                .collect(),
        ),
        2 => Request::Stats,
        3 => Request::Shutdown,
        4 => Request::LoadGraph {
            name: format!("graph-{a}"),
            path: format!("/tmp/snapshots/{b}.snap"),
        },
        5 => Request::UnloadGraph {
            name: format!("graph-{a}"),
        },
        6 => Request::ListGraphs,
        _ => Request::TuneGraph {
            graph,
            algo: match extra % 3 {
                0 => QueryOp::Sssp,
                1 => QueryOp::Wbfs,
                _ => QueryOp::KCore,
            },
            budget: b,
        },
    }
}

/// One arbitrary response over the payload-bearing variants (the
/// fixed-shape ones — `Bye`, `Unloaded`, `Stats` — are covered by the
/// protocol module's roundtrip tests).
fn sample_response(sel: u64, a: u32, count: u64, flag: bool) -> Response {
    match sel % 4 {
        0 => Response::Distance {
            distance: flag.then_some(i64::from(a)),
            relaxations: count,
        },
        1 => Response::DistVec((0..count % 17).map(|i| i as i64 - 3).collect()),
        2 => Response::Error {
            kind: ErrorKind::Timeout,
            message: format!("deadline of {a}ms expired"),
        },
        _ => Response::Busy {
            scope: if flag {
                BusyScope::Graph(a)
            } else {
                BusyScope::Global
            },
            pending: count,
            budget: count.wrapping_add(1),
            retry_after_ms: u64::from(a) % 2_500 + 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shape 1: uniform byte soup. Decoders must return (Ok or Err), never
    /// panic, and the frame reader must terminate on arbitrary input.
    #[test]
    fn random_byte_soup_never_panics_the_decoders(
        seed in 0u64..=u64::MAX,
        len in 0usize..=512,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        // Drain the soup through the frame reader too: every iteration
        // consumes at least the 4-byte prefix, so this terminates.
        let mut cursor = &bytes[..];
        while let Ok(Some(payload)) = read_frame(&mut cursor) {
            let _ = Request::decode(&payload);
        }
    }

    /// Shape 2 (requests): every proper prefix of a valid encoding is an
    /// error, and so is one byte of trailing garbage.
    #[test]
    fn every_proper_prefix_of_a_valid_request_is_rejected(
        sel in 0u64..=u64::MAX,
        graph in 0u32..=u32::MAX,
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
        extra in 0u64..=u64::MAX,
    ) {
        let request = sample_request(sel, graph, a, b, extra);
        let full = request.encode();
        prop_assert_eq!(Request::decode(&full).expect("valid encoding"), request);
        for cut in 0..full.len() {
            prop_assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                full.len(),
            );
        }
        let mut padded = full;
        padded.push(0);
        prop_assert!(Request::decode(&padded).is_err(), "trailing byte accepted");
    }

    /// Shape 2 (responses): same sweep over the payload-bearing variants.
    #[test]
    fn every_proper_prefix_of_a_valid_response_is_rejected(
        sel in 0u64..=u64::MAX,
        a in 0u32..=u32::MAX,
        count in 0u64..=u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let response = sample_response(sel, a, count, flag);
        let full = response.encode();
        prop_assert_eq!(Response::decode(&full).expect("valid encoding"), response);
        for cut in 0..full.len() {
            prop_assert!(
                Response::decode(&full[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                full.len(),
            );
        }
        let mut padded = full;
        padded.push(0);
        prop_assert!(Response::decode(&padded).is_err(), "trailing byte accepted");
    }

    /// Shape 3: a single bit flip never panics, and any mutant the decoder
    /// accepts is a self-consistent message (re-encodes and re-decodes to
    /// the same value).
    #[test]
    fn single_bit_flips_never_panic_and_accepted_mutants_are_consistent(
        sel in 0u64..=u64::MAX,
        graph in 0u32..=u32::MAX,
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
        extra in 0u64..=u64::MAX,
        bit in 0usize..=8192,
    ) {
        let mut bytes = sample_request(sel, graph, a, b, extra).encode();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        if let Ok(mutant) = Request::decode(&bytes) {
            let reencoded = mutant.encode();
            prop_assert_eq!(Request::decode(&reencoded).expect("reencoding"), mutant);
        }
    }

    /// Shape 4a: element counts beyond the bytes present are refused
    /// before any count-sized allocation (`Cursor::len_prefix`).
    #[test]
    fn lying_element_counts_are_rejected_up_front(
        count in (1u64 << 32)..=u64::MAX,
        vec_tag in 1u8..=2,
    ) {
        // A batch request claiming `count` queries with an empty body.
        let mut request = vec![PROTOCOL_VERSION, 1];
        request.extend_from_slice(&count.to_le_bytes());
        prop_assert!(Request::decode(&request).is_err());
        // A DistVec (1) / Coreness (2) response claiming `count` i64s.
        let mut response = vec![PROTOCOL_VERSION, vec_tag];
        response.extend_from_slice(&count.to_le_bytes());
        prop_assert!(Response::decode(&response).is_err());
    }

    /// Shape 4b: frame prefixes over [`MAX_FRAME_LEN`] are refused with a
    /// typed error carrying the declared size, before allocating.
    #[test]
    fn frames_over_the_cap_are_refused(
        over in 1u64..=(u32::MAX as u64 - MAX_FRAME_LEN as u64),
    ) {
        let declared = (MAX_FRAME_LEN as u64 + over) as u32;
        let bytes = declared.to_le_bytes();
        let err = read_frame(&mut &bytes[..]).expect_err("oversized frame accepted");
        prop_assert!(
            matches!(err, WireError::FrameTooLarge { declared: d } if d == declared as usize),
            "wrong error for a {declared}-byte declaration: {err}",
        );
    }

    /// Shape 4c: frames whose body (or length prefix) is cut short surface
    /// as errors, not hangs or panics — except the empty input, which is a
    /// clean hangup at a frame boundary (`Ok(None)`).
    #[test]
    fn truncated_frames_surface_as_errors(
        declared in 1u32..=1024,
        keep in 0usize..=1024,
    ) {
        let keep = keep % declared as usize;
        let mut bytes = declared.to_le_bytes().to_vec();
        bytes.extend_from_slice(&vec![0xAB; keep]);
        prop_assert!(read_frame(&mut &bytes[..]).is_err());
        // Cut inside the length prefix itself.
        prop_assert!(read_frame(&mut &bytes[..2]).is_err());
        prop_assert!(matches!(read_frame(&mut &[][..]), Ok(None)));
    }
}
