//! Seeded chaos suite (ISSUE 7 acceptance): a serving process under
//! deterministic fault injection — torn frames, stalled reads, short
//! writes, mid-stream disconnects, truncated snapshot loads — must turn
//! **every** client call into an answer or a typed error, never a panic
//! or a wedged thread, and must still be serving correct answers once the
//! faults stop.
//!
//! The whole run derives from one seed (`CHAOS_SEED`, default 1): the
//! fault schedule, the query mix, and the client jitter are all
//! deterministic, so a failure reproduces from its seed alone. CI runs
//! this suite at several seeds (`.github/workflows/ci.yml`, `chaos-smoke`).
//!
//! Compiled only under the `fault-inject` feature:
//! `cargo test -p priograph-serve --features fault-inject --test chaos`.

#![cfg(feature = "fault-inject")]

use priograph_algorithms::serial::dijkstra;
use priograph_algorithms::UNREACHABLE;
use priograph_graph::gen::GraphGen;
use priograph_graph::GraphSnapshot;
use priograph_serve::client::{Client, ResilientClient};
use priograph_serve::faults::{self, FaultConfig};
use priograph_serve::protocol::{Query, Response, WireError};
use priograph_serve::server::{serve, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};

const CLIENT_THREADS: u64 = 4;
const QUERIES_PER_THREAD: u64 = 160; // 640 total, > the 500 the issue demands
const FAULT_RATE_PERCENT: u8 = 12;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-thread query mix: mostly point queries, full
/// SSSP every fifth, and a tight-deadline query every tenth so the typed
/// `Timeout` path gets exercised while stalls are landing.
fn chaos_query(seed: u64, thread: u64, i: u64, n: u32) -> Query {
    let roll = splitmix64(seed ^ (thread << 32) ^ i);
    let source = (roll % u64::from(n)) as u32;
    let q = if i % 5 == 4 {
        Query::sssp(source)
    } else {
        let target = (splitmix64(roll) % u64::from(n)) as u32;
        Query::ppsp(source, target)
    };
    if i % 10 == 9 {
        q.with_deadline(8)
    } else {
        q
    }
}

#[test]
fn seeded_chaos_storm_yields_answers_or_typed_errors_and_the_server_survives() {
    let seed = chaos_seed();
    let graph = GraphGen::road_grid(20, 20).seed(2).build();
    let n = graph.num_vertices() as u32;
    let reference = dijkstra(&graph, 0);
    let handle = serve(
        graph,
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Phase 1: the storm. Every accepted connection from here on is
    // wrapped in the seed-scheduled FaultyStream.
    faults::install(FaultConfig {
        seed,
        rate_percent: FAULT_RATE_PERCENT,
        truncate_snapshot_loads: false,
    });

    let answers = AtomicU64::new(0);
    let typed_errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread in 0..CLIENT_THREADS {
            let (answers, typed_errors) = (&answers, &typed_errors);
            scope.spawn(move || {
                let mut client = ResilientClient::new(addr);
                for i in 0..QUERIES_PER_THREAD {
                    // Every call must RESOLVE — the match below is total,
                    // so a panic or a hang is the only way to fail here.
                    match client.query(chaos_query(seed, thread, i, n)) {
                        Ok(
                            Response::Distance { .. }
                            | Response::DistVec(_)
                            | Response::Coreness(_),
                        ) => {
                            answers.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => {
                            // Busy / typed in-band errors; anything else
                            // (Stats, Bye, ...) would be a routing bug.
                            assert!(
                                matches!(other, Response::Error { .. } | Response::Busy { .. }),
                                "seed {seed}: unexpected response {other:?}"
                            );
                            typed_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(
                            WireError::Io(_)
                            | WireError::Busy { .. }
                            | WireError::Remote { .. }
                            | WireError::CircuitOpen { .. },
                        ) => {
                            typed_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => {
                            panic!("seed {seed}: untyped failure surfaced: {other:?}")
                        }
                    }
                }
            });
        }
    });
    let answers = answers.load(Ordering::Relaxed);
    let typed_errors = typed_errors.load(Ordering::Relaxed);
    assert_eq!(
        answers + typed_errors,
        CLIENT_THREADS * QUERIES_PER_THREAD,
        "every chaos call must resolve"
    );
    assert!(
        answers > 0,
        "seed {seed}: a {FAULT_RATE_PERCENT}% fault rate must not kill every call \
         ({typed_errors} typed errors)"
    );

    // Phase 2: torn snapshot loads. The truncation knob fires on the
    // server's load path itself (not the stream), so use a clean
    // connection: disarm, connect (this stream wraps as a pass-through),
    // then arm truncation at rate 100 — every load below sees a strict
    // prefix of the real file and must fail with a typed error.
    faults::clear();
    let mut control = Client::connect(addr).expect("connect control");
    // One round-trip pins the wrap: the server only wraps a stream when
    // its accept loop reaches it, so a completed request proves this
    // connection was wrapped while disarmed (and stays a pass-through
    // after re-arming below).
    control.stats().expect("control round-trip while disarmed");
    let snap_path = std::env::temp_dir().join(format!(
        "priograph_chaos_{}_{seed}.snap",
        std::process::id()
    ));
    let extra = GraphGen::road_grid(6, 6).seed(3).build();
    GraphSnapshot::write(&extra, &snap_path).expect("write snapshot");
    faults::install(FaultConfig {
        seed,
        rate_percent: 100,
        truncate_snapshot_loads: true,
    });
    for i in 0..4u32 {
        let outcome = control.load_graph(
            &format!("chaos-extra-{i}"),
            snap_path.to_str().expect("utf-8 temp path"),
        );
        match outcome {
            Err(WireError::Remote { kind, message }) => {
                assert!(
                    !message.is_empty(),
                    "seed {seed}: torn load {i} must explain itself ({kind})"
                );
            }
            other => panic!("seed {seed}: torn load {i} must fail typed, got {other:?}"),
        }
    }
    faults::clear();
    let _ = std::fs::remove_file(&snap_path);

    // Phase 3: health check. The same process must still accept fresh
    // connections and serve CORRECT answers — proof no dispatcher or
    // handler thread panicked or wedged during the storm.
    let mut client = Client::connect(addr).expect("connect after the storm");
    let stats = client.stats().expect("stats after the storm");
    assert!(
        stats.queries > 0,
        "the storm's answered queries must have been counted"
    );
    for target in [1u32, 57, n - 1] {
        match client
            .query(Query::ppsp(0, target))
            .expect("post-storm query")
        {
            Response::Distance { distance, .. } => {
                let expected = (reference[target as usize] < UNREACHABLE)
                    .then_some(reference[target as usize]);
                assert_eq!(distance, expected, "seed {seed}: post-storm 0->{target}");
            }
            other => panic!("seed {seed}: post-storm query got {other:?}"),
        }
    }
    handle.stop();
}
