//! Lane-fairness tests for the work-stealing execution core (ISSUE 10):
//! a `TuneGraph` storm plus full-vector scans on the hot graph must not
//! starve point queries on a second resident graph — every answer stays
//! equal to the serial Dijkstra reference and the point-query p99 stays
//! bounded (the pre-lane dispatcher wedged such queries behind the storm
//! for seconds). A seeded storm of mixed operations then drives the
//! scheduler through every packet type at once, chaos-style: every call
//! must resolve to an answer or a typed error, and the server must still
//! serve correct answers afterwards.

use priograph_algorithms::serial::{dijkstra, kcore_serial};
use priograph_algorithms::UNREACHABLE;
use priograph_graph::gen::GraphGen;
use priograph_serve::client::Client;
use priograph_serve::protocol::{Query, QueryOp, Response, WireError};
use priograph_serve::server::{serve_named, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Point-query p99 bound under the storm. Deliberately generous — the
/// committed perf gate is `load_lane` against `slo.toml`; this bound only
/// has to separate "lanes work" (sub-millisecond typical) from the
/// failure modes it guards: a starved admission handoff or a point query
/// queued behind a whole tune run, both of which cost hundreds of
/// milliseconds to seconds.
const POINT_P99_BOUND: Duration = Duration::from_millis(500);

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn two_graph_server(threads: usize) -> (priograph_serve::server::ServerHandle, u32, u32) {
    let hot = GraphGen::road_grid(24, 24).seed(4).build();
    let quiet = GraphGen::road_grid(16, 16).seed(7).build();
    let n_hot = hot.num_vertices() as u32;
    let n_quiet = quiet.num_vertices() as u32;
    let handle = serve_named(
        vec![("hot".to_string(), hot), ("quiet".to_string(), quiet)],
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    (handle, n_hot, n_quiet)
}

#[test]
fn point_queries_overtake_a_tune_storm_and_scans_on_the_other_graph() {
    let hot = GraphGen::road_grid(24, 24).seed(4).build();
    let quiet = GraphGen::road_grid(16, 16).seed(7).build();
    let hot_ref = dijkstra(&hot, 0);
    let quiet_refs: Vec<Vec<i64>> = (0..4).map(|s| dijkstra(&quiet, s * 19)).collect();
    let n_quiet = quiet.num_vertices() as u32;
    let (handle, _, _) = {
        let n_hot = hot.num_vertices() as u32;
        let handle = serve_named(
            vec![("hot".to_string(), hot), ("quiet".to_string(), quiet)],
            ServerConfig {
                threads: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        (handle, n_hot, n_quiet)
    };
    let addr = handle.addr();

    let stop = AtomicBool::new(false);
    let tunes = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        // The storm: two connections tuning the hot graph back to back
        // (Maintenance lane). Busy refusals under quota pressure are fine;
        // the storm only has to keep tune packets in flight.
        for _ in 0..2 {
            let (stop, tunes) = (&stop, &tunes);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let Ok(mut client) = Client::connect(addr) else {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    };
                    while !stop.load(Ordering::Acquire) {
                        match client.tune_graph(0, QueryOp::Sssp, 2) {
                            Ok(_) => {
                                tunes.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => break,
                        }
                    }
                }
            });
        }
        // Full-vector scans on the hot graph (Background lane), answers
        // checked against the serial reference throughout.
        {
            let (stop, scans, hot_ref) = (&stop, &scans, &hot_ref);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect scans");
                while !stop.load(Ordering::Acquire) {
                    match client.query(Query::sssp(0).on_graph(0)) {
                        Ok(Response::DistVec(dist)) => {
                            assert_eq!(&dist, hot_ref, "scan answer drifted under the storm");
                            scans.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Response::Busy { .. }) | Err(WireError::Busy { .. }) => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Ok(other) => panic!("scan got {other:?}"),
                        Err(e) => panic!("scan failed: {e:?}"),
                    }
                }
            });
        }

        // The measured foreground: point queries on the *quiet* graph
        // (Interactive lane). Each one is timed and checked.
        let mut client = Client::connect(addr).expect("connect points");
        for i in 0..400u64 {
            let roll = splitmix64(i);
            let source = ((roll % 4) * 19) as u32;
            let target = (splitmix64(roll) % u64::from(n_quiet)) as u32;
            let t0 = Instant::now();
            let response = client
                .query(Query::ppsp(source, target).on_graph(1))
                .expect("point query");
            latencies.push(t0.elapsed());
            match response {
                Response::Distance { distance, .. } => {
                    let dist = &quiet_refs[(source / 19) as usize];
                    let expected =
                        (dist[target as usize] < UNREACHABLE).then_some(dist[target as usize]);
                    assert_eq!(distance, expected, "point {source}->{target} under storm");
                }
                other => panic!("point query got {other:?}"),
            }
        }
        stop.store(true, Ordering::Release);
        handle.stop(); // unblocks a storm connection mid-tune
    });

    let tunes = tunes.load(Ordering::Relaxed);
    let scans = scans.load(Ordering::Relaxed);
    assert!(tunes > 0, "the tune storm never landed a tune");
    assert!(scans > 0, "no concurrent scan completed");
    latencies.sort_unstable();
    let p99 = latencies[latencies.len() * 99 / 100 - 1];
    assert!(
        p99 <= POINT_P99_BOUND,
        "point-query p99 {p99:?} exceeds {POINT_P99_BOUND:?} under a tune storm \
         ({tunes} tunes, {scans} scans ran concurrently) — interactive packets \
         are not overtaking background work"
    );
}

/// The seeded mixed-operation storm: four client threads drive points,
/// scans, k-cores, batches, and tunes against both graphs at once through
/// the work-stealing core. Every call must resolve (answer, Busy, or a
/// typed error — never a hang or a panic), and the same process must
/// still serve reference-correct answers afterwards.
#[test]
fn seeded_mixed_storm_resolves_every_call_and_the_scheduler_survives() {
    let seed = chaos_seed();
    let (handle, n_hot, n_quiet) = two_graph_server(4);
    let addr = handle.addr();
    let answers = AtomicU64::new(0);
    let refusals = AtomicU64::new(0);
    const THREADS: u64 = 4;
    const OPS: u64 = 120;

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let (answers, refusals) = (&answers, &refusals);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect storm");
                for i in 0..OPS {
                    let roll = splitmix64(seed ^ (thread << 32) ^ i);
                    let graph = (roll % 2) as u32;
                    let n = if graph == 0 { n_hot } else { n_quiet };
                    let source = (splitmix64(roll ^ 1) % u64::from(n)) as u32;
                    let target = (splitmix64(roll ^ 2) % u64::from(n)) as u32;
                    let outcome = match roll % 10 {
                        // Points dominate, as in the serving mixes.
                        0..=5 => client.query(Query::ppsp(source, target).on_graph(graph)),
                        6 => client.query(Query::sssp(source).on_graph(graph)),
                        7 => client.query(Query::kcore().on_graph(graph)),
                        8 => client
                            .batch(vec![
                                Query::ppsp(source, target).on_graph(graph),
                                Query::wbfs(source).on_graph(graph),
                                // A tight deadline sprinkled in: the typed
                                // Timeout path through the packet queue.
                                Query::ppsp(target, source).on_graph(graph).with_deadline(1),
                            ])
                            .map(Response::Batch),
                        _ => client
                            .tune_graph(graph, QueryOp::Sssp, 1)
                            .map(|_| Response::Bye), // marker: resolved fine
                    };
                    match outcome {
                        Ok(_) => {
                            answers.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(
                            WireError::Busy { .. }
                            | WireError::Remote { .. }
                            | WireError::CircuitOpen { .. },
                        ) => {
                            refusals.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!(
                            "seed {seed}: thread {thread} op {i} surfaced an untyped \
                             failure through the scheduler: {other:?}"
                        ),
                    }
                }
            });
        }
    });
    assert_eq!(
        answers.load(Ordering::Relaxed) + refusals.load(Ordering::Relaxed),
        THREADS * OPS,
        "every storm call must resolve"
    );
    assert!(
        answers.load(Ordering::Relaxed) > 0,
        "seed {seed}: the storm must land answers, not only refusals"
    );

    // Health check: correct answers from the same process, both graphs.
    let hot = GraphGen::road_grid(24, 24).seed(4).build();
    let quiet = GraphGen::road_grid(16, 16).seed(7).build();
    let hot_ref = dijkstra(&hot, 3);
    let quiet_core = kcore_serial(&quiet);
    let mut client = Client::connect(addr).expect("connect after the storm");
    match client.query(Query::sssp(3).on_graph(0)).expect("post sssp") {
        Response::DistVec(dist) => assert_eq!(dist, hot_ref, "seed {seed}: post-storm sssp"),
        other => panic!("post-storm sssp got {other:?}"),
    }
    match client
        .query(Query::kcore().on_graph(1))
        .expect("post kcore")
    {
        Response::Coreness(core) => assert_eq!(core, quiet_core, "seed {seed}: post-storm kcore"),
        other => panic!("post-storm kcore got {other:?}"),
    }
    handle.stop();
}
