//! Pseudo-C++ code generation, reproducing paper Figure 9.
//!
//! GraphIt emits C++; this reproduction emits the same *programs* as
//! documentation-grade text. The three variants of Figure 9 are
//! distinguished purely by the plan:
//!
//! * lazy + SparsePush → Figure 9(a): output buffer, atomic write-min,
//!   CAS deduplication, `setupFrontier`, `updateBuckets`;
//! * lazy + DensePull → Figure 9(b): dense boolean maps, plain writes;
//! * eager → Figure 9(c): OpenMP parallel region, `local_bins`, and (with
//!   fusion) the inner draining while-loop of Figure 7.

use crate::ir::ast::{Expr, ProgramAst, Stmt};
use crate::ir::plan::Plan;
use crate::schedule::{Direction, PriorityUpdateStrategy};
use std::fmt::Write as _;

/// Renders an expression as C++.
fn cpp_expr(expr: &Expr, vec_name: &str) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Src => "s".into(),
        Expr::Dst => "d.v".into(),
        Expr::Weight => "d.weight".into(),
        Expr::PriorityOf(e) => format!("{vec_name}[{}]", cpp_expr(e, vec_name)),
        Expr::CurrentPriority => "pq->get_current_priority()".into(),
        Expr::Add(a, b) => format!("({} + {})", cpp_expr(a, vec_name), cpp_expr(b, vec_name)),
        Expr::Sub(a, b) => format!("({} - {})", cpp_expr(a, vec_name), cpp_expr(b, vec_name)),
        Expr::Mul(a, b) => format!("({} * {})", cpp_expr(a, vec_name), cpp_expr(b, vec_name)),
        Expr::Neg(a) => format!("(-{})", cpp_expr(a, vec_name)),
    }
}

/// Emits the inlined UDF body with the compiler-inserted update code.
///
/// `on_change` is the statement generated for a successful priority change
/// (recording into the output buffer, the dense map, or local bins).
fn emit_udf_body(
    out: &mut String,
    program: &ProgramAst,
    plan: &Plan,
    indent: &str,
    on_change: &str,
) {
    let vec = &program.pq.priority_vector;
    let udf = program.loop_udf().expect("plan guaranteed the UDF exists");
    for stmt in &udf.body {
        match stmt {
            Stmt::Let { name, value } => {
                let _ = writeln!(out, "{indent}int {name} = {};", cpp_expr(value, vec));
            }
            Stmt::UpdateMin { target, value } => {
                let tgt = cpp_expr(target, vec);
                let val = cpp_expr(value, vec);
                if plan.needs_atomics {
                    let _ = writeln!(
                        out,
                        "{indent}bool tracking_var = atomicWriteMin(&{vec}[{tgt}], {val});"
                    );
                } else {
                    let _ = writeln!(out, "{indent}bool tracking_var = false;");
                    let _ = writeln!(out, "{indent}if ({val} < {vec}[{tgt}]) {{");
                    let _ = writeln!(out, "{indent}    {vec}[{tgt}] = {val};");
                    let _ = writeln!(out, "{indent}    tracking_var = true;}}");
                }
                let _ = writeln!(out, "{indent}{on_change}");
            }
            Stmt::UpdateMax { target, value } => {
                let tgt = cpp_expr(target, vec);
                let val = cpp_expr(value, vec);
                if plan.needs_atomics {
                    let _ = writeln!(
                        out,
                        "{indent}bool tracking_var = atomicWriteMax(&{vec}[{tgt}], {val});"
                    );
                } else {
                    let _ = writeln!(out, "{indent}bool tracking_var = ({val} > {vec}[{tgt}]);");
                    let _ = writeln!(out, "{indent}if (tracking_var) {vec}[{tgt}] = {val};");
                }
                let _ = writeln!(out, "{indent}{on_change}");
            }
            Stmt::UpdateSum {
                target,
                delta,
                threshold,
            } => {
                let tgt = cpp_expr(target, vec);
                let d = cpp_expr(delta, vec);
                let t = cpp_expr(threshold, vec);
                let _ = writeln!(
                    out,
                    "{indent}bool tracking_var = atomicAddClamped(&{vec}[{tgt}], {d}, {t});"
                );
                let _ = writeln!(out, "{indent}{on_change}");
            }
        }
    }
}

/// Generates the pseudo-C++ program for `plan` (the Figure 9 reproduction).
pub fn emit_cpp(program: &ProgramAst, plan: &Plan) -> String {
    match plan.strategy {
        PriorityUpdateStrategy::Lazy | PriorityUpdateStrategy::LazyConstantSum => {
            match plan.direction {
                Direction::SparsePush => emit_lazy_sparse_push(program, plan),
                Direction::DensePull => emit_lazy_dense_pull(program, plan),
            }
        }
        PriorityUpdateStrategy::EagerNoFusion | PriorityUpdateStrategy::EagerWithFusion => {
            emit_eager(program, plan)
        }
    }
}

fn header(program: &ProgramAst, plan: &Plan) -> String {
    let vec = &program.pq.priority_vector;
    let mut out = String::new();
    let _ = writeln!(out, "// generated by priograph for `{}`", plan.program);
    let _ = writeln!(
        out,
        "// schedule: {} / {} / delta={}",
        plan.strategy.as_str(),
        plan.direction.as_str(),
        plan.delta
    );
    let _ = writeln!(out, "int * {vec} = new int[num_verts];");
    let _ = writeln!(out, "int delta = {};", plan.delta);
    let _ = writeln!(out, "WGraph* G = loadGraph(argv[1]);");
    out
}

/// Figure 9(a): lazy bucket update with parallel SparsePush traversal.
fn emit_lazy_sparse_push(program: &ProgramAst, plan: &Plan) -> String {
    let vec = &program.pq.priority_vector;
    let mut out = header(program, plan);
    let _ = writeln!(
        out,
        "LazyPriorityQueue* pq = new LazyPriorityQueue(true, \"lower\", {vec}, delta);"
    );
    let _ = writeln!(out, "while (pq.finished()) {{");
    let _ = writeln!(out, "  VertexSubset* frontier = getNextBucket(pq);");
    let _ = writeln!(out, "  uint* outEdges = setupOutputBuffer(g, frontier);");
    let _ = writeln!(
        out,
        "  uint* offsets = setupOutputBufferOffsets(g, frontier);"
    );
    let _ = writeln!(out, "  parallel_for (uint s : frontier.vert_array) {{");
    let _ = writeln!(out, "    int j = 0;");
    let _ = writeln!(out, "    uint offset = offsets[i];");
    let _ = writeln!(out, "    for (WNode d : G.getOutNgh(s)) {{");
    let record = if plan.needs_dedup {
        "if (tracking_var && CAS(dedup_flags[d.v],0,1)) {\n         outEdges[offset + j] = d.v;\n      } else { outEdges[offset + j] = UINT_MAX; }\n      j++;"
    } else {
        "if (tracking_var) { outEdges[offset + j] = d.v; }\n      else { outEdges[offset + j] = UINT_MAX; }\n      j++;"
    };
    emit_udf_body(&mut out, program, plan, "      ", record);
    let _ = writeln!(out, "    }}}}");
    let _ = writeln!(
        out,
        "  VertexSubset* nextFrontier = setupFrontier(outEdges);"
    );
    let _ = writeln!(out, "  updateBuckets(nextFrontier, pq, delta);");
    if let Some(count_udf) = &plan.count_udf {
        let _ = writeln!(out, "  // histogram-reduced constant-sum path:");
        for line in count_udf.to_string().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Figure 9(b): lazy bucket update with parallel DensePull traversal.
fn emit_lazy_dense_pull(program: &ProgramAst, plan: &Plan) -> String {
    let vec = &program.pq.priority_vector;
    let mut out = header(program, plan);
    let _ = writeln!(
        out,
        "LazyPriorityQueue* pq = new LazyPriorityQueue(true, \"lower\", {vec}, delta);"
    );
    let _ = writeln!(out, "while (pq.finished()) {{");
    let _ = writeln!(out, "  VertexSubset* frontier = getNextBucket(pq);");
    let _ = writeln!(out, "  bool* next = newA(bool, g.num_nodes());");
    let _ = writeln!(
        out,
        "  parallel_for (uint i = 0; i < numNodes; i++) next[i] = 0;"
    );
    let _ = writeln!(out, "  parallel_for (uint d = 0; d < numNodes; d++) {{");
    let _ = writeln!(out, "    for (WNode s : G.getInNgh(d)) {{");
    let _ = writeln!(out, "      if (frontier->bool_map_[s.v]) {{");
    emit_udf_body(
        &mut out,
        program,
        plan,
        "        ",
        "if (tracking_var) { next[d] = 1; }",
    );
    let _ = writeln!(out, "  }}}}}}");
    let _ = writeln!(out, "  VertexSubset* nextFrontier = setupFrontier(next);");
    let _ = writeln!(out, "  updateBuckets(nextFrontier, pq, delta);");
    let _ = writeln!(out, "}}");
    out
}

/// Figure 9(c): eager bucket update with parallel SparsePush traversal,
/// plus the bucket-fusion inner loop (Figure 7) when scheduled.
fn emit_eager(program: &ProgramAst, plan: &Plan) -> String {
    let vec = &program.pq.priority_vector;
    let mut out = header(program, plan);
    let _ = writeln!(
        out,
        "EagerPriorityQueue* pq = new EagerPriorityQueue(true, \"lower\", {vec}, delta);"
    );
    let _ = writeln!(out, "uint* frontier = new uint[G.num_edges()];");
    let _ = writeln!(out, "#pragma omp parallel");
    let _ = writeln!(out, "{{   vector<vector<uint>> local_bins(0);");
    let _ = writeln!(out, "    while (pq.finished()) {{");
    let _ = writeln!(out, "      #pragma omp for nowait schedule(dynamic, 64)");
    let _ = writeln!(out, "      for (size_t i = 0; i < frontier.size(); i++) {{");
    let _ = writeln!(out, "        uint s = frontier[i];");
    let _ = writeln!(out, "        for (WNode d : G.getOutNgh(s)) {{");
    let record = "if (tracking_var) {\n            size_t dest_bin = new_dist/delta;\n            if (dest_bin >= local_bins.size()) { local_bins.resize(dest_bin+1); }\n            local_bins[dest_bin].push_back(d.v);\n          }";
    emit_udf_body(&mut out, program, plan, "          ", record);
    let _ = writeln!(out, "      }}}} // end of frontier for loop");
    if let Some(threshold) = plan.fusion_threshold {
        let _ = writeln!(out, "      // bucket fusion (Figure 7, lines 14-21):");
        let _ = writeln!(out, "      while (!local_bins[curr_bin].empty() &&");
        let _ = writeln!(
            out,
            "             local_bins[curr_bin].size() < {threshold}) {{"
        );
        let _ = writeln!(
            out,
            "        vector<uint> curr = move(local_bins[curr_bin]);"
        );
        let _ = writeln!(
            out,
            "        for (uint s : curr) {{ /* same relaxation as above */ }}"
        );
        let _ = writeln!(out, "      }}");
    }
    let _ = writeln!(out, "      ... // omitted: find next bucket");
    let _ = writeln!(out, "      #pragma omp barrier");
    let _ = writeln!(
        out,
        "      ... // omitted: copy local buckets to global bucket"
    );
    let _ = writeln!(out, "      #pragma omp barrier");
    let _ = writeln!(out, "    }} // end of while loop");
    let _ = writeln!(out, "}} // end of parallel region");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::plan::lower;
    use crate::ir::programs;
    use crate::schedule::Schedule;

    #[test]
    fn figure_9a_lazy_sparse_push() {
        let prog = programs::delta_stepping();
        let plan = lower(&prog, &Schedule::lazy(4)).unwrap();
        let code = emit_cpp(&prog, &plan);
        // The signature lines of Figure 9(a):
        assert!(code.contains("LazyPriorityQueue"));
        assert!(code.contains("setupOutputBuffer"));
        assert!(code.contains("int new_dist = (dist[s] + d.weight);"));
        assert!(code.contains("atomicWriteMin(&dist[d.v], new_dist)"));
        assert!(code.contains("setupFrontier(outEdges)"));
        assert!(code.contains("updateBuckets"));
        assert!(!code.contains("#pragma omp parallel\n"));
    }

    #[test]
    fn figure_9b_dense_pull_has_no_atomics() {
        let prog = programs::delta_stepping();
        let plan = lower(
            &prog,
            &Schedule::lazy(4).config_apply_direction(crate::schedule::Direction::DensePull),
        )
        .unwrap();
        let code = emit_cpp(&prog, &plan);
        assert!(code.contains("bool_map_"));
        assert!(code.contains("getInNgh"));
        assert!(!code.contains("atomicWriteMin"), "pull needs no atomics");
        assert!(code.contains("if (new_dist < dist[d.v])"));
        assert!(code.contains("next[d] = 1;"));
    }

    #[test]
    fn figure_9c_eager_has_parallel_region_and_bins() {
        let prog = programs::delta_stepping();
        let plan = lower(&prog, &Schedule::eager(4)).unwrap();
        let code = emit_cpp(&prog, &plan);
        assert!(code.contains("#pragma omp parallel"));
        assert!(code.contains("local_bins"));
        assert!(code.contains("schedule(dynamic, 64)"));
        assert!(code.contains("#pragma omp barrier"));
        assert!(!code.contains("bucket fusion"), "no fusion scheduled");
    }

    #[test]
    fn fusion_emits_inner_while_loop() {
        let prog = programs::delta_stepping();
        let plan = lower(&prog, &Schedule::eager_with_fusion(4)).unwrap();
        let code = emit_cpp(&prog, &plan);
        assert!(code.contains("bucket fusion"));
        assert!(code.contains("local_bins[curr_bin].size() < 1000"));
    }

    #[test]
    fn kcore_histogram_includes_transformed_udf() {
        let prog = programs::kcore();
        let plan = lower(&prog, &Schedule::lazy_constant_sum()).unwrap();
        let code = emit_cpp(&prog, &plan);
        assert!(code.contains("apply_f_transformed"));
        assert!(code.contains("std::max(priority + (-1) * count, k)"));
        assert!(code.contains("CAS(dedup_flags"), "k-core needs dedup");
        assert!(code.contains("atomicAddClamped(&degrees[d.v], -1, k)"));
    }

    #[test]
    fn schedules_change_generated_code() {
        let prog = programs::delta_stepping();
        let a = emit_cpp(&prog, &lower(&prog, &Schedule::lazy(4)).unwrap());
        let b = emit_cpp(&prog, &lower(&prog, &Schedule::eager(4)).unwrap());
        assert_ne!(a, b, "different schedules must generate different code");
    }
}
