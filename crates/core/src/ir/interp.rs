//! Executing compiled plans: a register-machine compiler for UDF bodies and
//! a driver that runs lowered plans on the runtime engines.
//!
//! This closes the DSL loop: `programs::delta_stepping()` → `plan::lower`
//! → `compile_udf` → [`run_program`] produces the same distances as the
//! hand-written engine path, demonstrating that the compiler pipeline is
//! executable and not just pretty-printed.

use crate::engine::{run_ordered_on, StopFn};
use crate::ir::analysis::{self, AnalysisError};
use crate::ir::ast::{Expr, ProgramAst, Stmt, UdfDef};
use crate::ir::plan::{CompileError, Plan};
use crate::problem::{OrderedOutput, OrderedProblem};
use crate::schedule::Schedule;
use crate::udf::{OrderedUdf, PriorityOps};
use priograph_graph::{CsrGraph, VertexId, Weight};
use priograph_parallel::Pool;

/// Maximum registers per compiled UDF (bodies are tiny).
const MAX_REGS: usize = 16;

/// One register-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Instr {
    /// `r[dst] = imm`
    LoadInt(u8, i64),
    /// `r[dst] = src_vertex`
    LoadSrc(u8),
    /// `r[dst] = dst_vertex`
    LoadDst(u8),
    /// `r[dst] = weight`
    LoadWeight(u8),
    /// `r[dst] = priority[r[a]]`
    LoadPriority(u8, u8),
    /// `r[dst] = current_priority`
    LoadCurrent(u8),
    /// `r[dst] = r[a] + r[b]`
    Add(u8, u8, u8),
    /// `r[dst] = r[a] - r[b]`
    Sub(u8, u8, u8),
    /// `r[dst] = r[a] * r[b]`
    Mul(u8, u8, u8),
    /// `r[dst] = -r[a]`
    Neg(u8, u8),
    /// `update_min(r[target] as vertex, r[value])`
    UpdateMin {
        /// Register holding the target vertex.
        target: u8,
        /// Register holding the candidate priority.
        value: u8,
    },
    /// `update_max(r[target], r[value])`
    UpdateMax {
        /// Register holding the target vertex.
        target: u8,
        /// Register holding the candidate priority.
        value: u8,
    },
    /// `update_sum(r[target], r[delta], r[threshold])`
    UpdateSum {
        /// Register holding the target vertex.
        target: u8,
        /// Register holding the delta.
        delta: u8,
        /// Register holding the threshold.
        threshold: u8,
    },
}

/// A UDF compiled to straight-line register code, executable by the engines.
#[derive(Debug, Clone)]
pub struct CompiledUdf {
    instrs: Vec<Instr>,
    constant_sum: Option<i64>,
    needs_final_dedup: bool,
}

/// Compiles a UDF body to register code.
///
/// # Errors
///
/// Fails on unbound variables or bodies needing more than 16 registers.
pub fn compile_udf(udf: &UdfDef) -> Result<CompiledUdf, AnalysisError> {
    let mut compiler = Compiler::default();
    for stmt in &udf.body {
        compiler.stmt(stmt)?;
    }
    Ok(CompiledUdf {
        instrs: compiler.instrs,
        constant_sum: analysis::constant_sum(udf).ok().map(|c| c.delta),
        needs_final_dedup: udf.body.iter().any(|s| matches!(s, Stmt::UpdateSum { .. })),
    })
}

#[derive(Default)]
struct Compiler {
    instrs: Vec<Instr>,
    /// (name, register) bindings, innermost last.
    vars: Vec<(String, u8)>,
    next_reg: u8,
}

impl Compiler {
    fn alloc(&mut self) -> Result<u8, AnalysisError> {
        // Registers are never freed: bodies are a handful of statements.
        let reg = self.next_reg;
        if reg as usize >= MAX_REGS {
            // Reuse the unbound-variable error shape rather than growing the
            // enum for a case no real program hits.
            return Err(AnalysisError::UnboundVariable(
                "register budget exceeded".into(),
            ));
        }
        self.next_reg += 1;
        Ok(reg)
    }

    fn expr(&mut self, expr: &Expr) -> Result<u8, AnalysisError> {
        match expr {
            Expr::Var(name) => self
                .vars
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|&(_, r)| r)
                .ok_or_else(|| AnalysisError::UnboundVariable(name.clone())),
            Expr::Int(v) => {
                let r = self.alloc()?;
                self.instrs.push(Instr::LoadInt(r, *v));
                Ok(r)
            }
            Expr::Src => {
                let r = self.alloc()?;
                self.instrs.push(Instr::LoadSrc(r));
                Ok(r)
            }
            Expr::Dst => {
                let r = self.alloc()?;
                self.instrs.push(Instr::LoadDst(r));
                Ok(r)
            }
            Expr::Weight => {
                let r = self.alloc()?;
                self.instrs.push(Instr::LoadWeight(r));
                Ok(r)
            }
            Expr::CurrentPriority => {
                let r = self.alloc()?;
                self.instrs.push(Instr::LoadCurrent(r));
                Ok(r)
            }
            Expr::PriorityOf(e) => {
                let a = self.expr(e)?;
                let r = self.alloc()?;
                self.instrs.push(Instr::LoadPriority(r, a));
                Ok(r)
            }
            Expr::Add(a, b) => self.binop(a, b, Instr::Add),
            Expr::Sub(a, b) => self.binop(a, b, Instr::Sub),
            Expr::Mul(a, b) => self.binop(a, b, Instr::Mul),
            Expr::Neg(a) => {
                let ra = self.expr(a)?;
                let r = self.alloc()?;
                self.instrs.push(Instr::Neg(r, ra));
                Ok(r)
            }
        }
    }

    fn binop(
        &mut self,
        a: &Expr,
        b: &Expr,
        make: fn(u8, u8, u8) -> Instr,
    ) -> Result<u8, AnalysisError> {
        let ra = self.expr(a)?;
        let rb = self.expr(b)?;
        let r = self.alloc()?;
        self.instrs.push(make(r, ra, rb));
        Ok(r)
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), AnalysisError> {
        match stmt {
            Stmt::Let { name, value } => {
                let r = self.expr(value)?;
                self.vars.push((name.clone(), r));
            }
            Stmt::UpdateMin { target, value } => {
                let t = self.expr(target)?;
                let v = self.expr(value)?;
                self.instrs.push(Instr::UpdateMin {
                    target: t,
                    value: v,
                });
            }
            Stmt::UpdateMax { target, value } => {
                let t = self.expr(target)?;
                let v = self.expr(value)?;
                self.instrs.push(Instr::UpdateMax {
                    target: t,
                    value: v,
                });
            }
            Stmt::UpdateSum {
                target,
                delta,
                threshold,
            } => {
                let t = self.expr(target)?;
                let d = self.expr(delta)?;
                let th = self.expr(threshold)?;
                self.instrs.push(Instr::UpdateSum {
                    target: t,
                    delta: d,
                    threshold: th,
                });
            }
        }
        Ok(())
    }
}

impl OrderedUdf for CompiledUdf {
    fn apply<P: PriorityOps>(&self, src: VertexId, dst: VertexId, weight: Weight, pq: &P) {
        let mut regs = [0i64; MAX_REGS];
        for instr in &self.instrs {
            match *instr {
                Instr::LoadInt(r, v) => regs[r as usize] = v,
                Instr::LoadSrc(r) => regs[r as usize] = i64::from(src),
                Instr::LoadDst(r) => regs[r as usize] = i64::from(dst),
                Instr::LoadWeight(r) => regs[r as usize] = i64::from(weight),
                Instr::LoadCurrent(r) => regs[r as usize] = pq.current_priority(),
                Instr::LoadPriority(r, a) => {
                    regs[r as usize] = pq.get(regs[a as usize] as VertexId)
                }
                Instr::Add(r, a, b) => regs[r as usize] = regs[a as usize] + regs[b as usize],
                Instr::Sub(r, a, b) => regs[r as usize] = regs[a as usize] - regs[b as usize],
                Instr::Mul(r, a, b) => regs[r as usize] = regs[a as usize] * regs[b as usize],
                Instr::Neg(r, a) => regs[r as usize] = -regs[a as usize],
                Instr::UpdateMin { target, value } => {
                    pq.update_min(regs[target as usize] as VertexId, regs[value as usize])
                }
                Instr::UpdateMax { target, value } => {
                    pq.update_max(regs[target as usize] as VertexId, regs[value as usize])
                }
                Instr::UpdateSum {
                    target,
                    delta,
                    threshold,
                } => pq.update_sum(
                    regs[target as usize] as VertexId,
                    regs[delta as usize],
                    regs[threshold as usize],
                ),
            }
        }
    }

    fn constant_sum(&self) -> Option<i64> {
        self.constant_sum
    }

    fn needs_final_dedup(&self) -> bool {
        self.needs_final_dedup
    }
}

/// Compiles `program` under `schedule` and runs it: the full DSL pipeline.
///
/// The caller supplies the runtime inputs the DSL leaves symbolic: the
/// graph, initial priorities, and seed vertices.
///
/// # Errors
///
/// Propagates lowering and analysis failures.
#[allow(clippy::too_many_arguments)]
pub fn run_program(
    pool: &Pool,
    graph: &CsrGraph,
    program: &ProgramAst,
    schedule: &Schedule,
    initial: Vec<i64>,
    seeds: &[VertexId],
    stop: Option<StopFn<'_>>,
) -> Result<(Plan, OrderedOutput), CompileError> {
    let plan = crate::ir::plan::lower(program, schedule)?;
    let udf = compile_udf(program.loop_udf().expect("lower checked the UDF"))?;

    let mut problem = if program.pq.lower_first {
        OrderedProblem::lower_first(graph)
    } else {
        OrderedProblem::higher_first(graph)
    };
    if program.pq.allow_coarsening {
        problem = problem.allow_coarsening();
    }
    problem = problem.init_per_vertex(initial);
    problem.seeds = if seeds.is_empty() {
        crate::problem::Seeds::AllFinite
    } else {
        crate::problem::Seeds::Vertices(seeds.to_vec())
    };

    let output =
        run_ordered_on(pool, &problem, schedule, &udf, stop).map_err(CompileError::Schedule)?;
    Ok((plan, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::programs;
    use crate::udf::{DecrementToFloor, MinPlusWeight};
    use priograph_buckets::NULL_PRIORITY;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn compiled_sssp_udf_matches_handwritten() {
        let g = GraphGen::rmat(7, 8).seed(3).weights_uniform(1, 50).build();
        let pool = Pool::new(2);
        let prog = programs::delta_stepping();
        let mut initial = vec![NULL_PRIORITY; g.num_vertices()];
        initial[0] = 0;

        for schedule in [
            Schedule::lazy(4),
            Schedule::eager(4),
            Schedule::eager_with_fusion(4),
        ] {
            let (plan, compiled) =
                run_program(&pool, &g, &prog, &schedule, initial.clone(), &[0], None).unwrap();
            assert_eq!(plan.delta, 4);

            let problem = OrderedProblem::lower_first(&g)
                .allow_coarsening()
                .init_per_vertex(initial.clone());
            let problem = crate::problem::OrderedProblem {
                seeds: crate::problem::Seeds::Vertices(vec![0]),
                ..problem
            };
            let hand = run_ordered_on(&pool, &problem, &schedule, &MinPlusWeight, None).unwrap();
            assert_eq!(compiled.priorities, hand.priorities, "{schedule}");
        }
    }

    #[test]
    fn compiled_kcore_matches_handwritten() {
        let g = GraphGen::rmat(7, 6).seed(11).build().symmetrize();
        let pool = Pool::new(2);
        let prog = programs::kcore();
        let degrees: Vec<i64> = g.vertices().map(|v| g.out_degree(v) as i64).collect();

        let (plan, compiled) = run_program(
            &pool,
            &g,
            &prog,
            &Schedule::lazy_constant_sum(),
            degrees.clone(),
            &[],
            None,
        )
        .unwrap();
        assert_eq!(plan.count_udf.as_ref().unwrap().constant, -1);

        let problem = OrderedProblem::lower_first(&g)
            .init_per_vertex(degrees)
            .seed_all_finite();
        let hand = run_ordered_on(
            &pool,
            &problem,
            &Schedule::lazy_constant_sum(),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        assert_eq!(compiled.priorities, hand.priorities);
    }

    #[test]
    fn compiled_udf_detects_constant_sum() {
        let prog = programs::kcore();
        let udf = compile_udf(prog.loop_udf().unwrap()).unwrap();
        assert_eq!(OrderedUdf::constant_sum(&udf), Some(-1));
        assert!(udf.needs_final_dedup());

        let prog = programs::delta_stepping();
        let udf = compile_udf(prog.loop_udf().unwrap()).unwrap();
        assert_eq!(OrderedUdf::constant_sum(&udf), None);
        assert!(!udf.needs_final_dedup());
    }

    #[test]
    fn unbound_variable_fails_compilation() {
        let udf = UdfDef {
            name: "bad".into(),
            body: vec![Stmt::UpdateMin {
                target: Expr::Dst,
                value: Expr::Var("ghost".into()),
            }],
        };
        assert!(compile_udf(&udf).is_err());
    }

    #[test]
    fn compile_errors_propagate_through_run_program() {
        let g = GraphGen::path(4).build();
        let pool = Pool::new(1);
        let prog = programs::kcore(); // forbids coarsening
        let err =
            run_program(&pool, &g, &prog, &Schedule::lazy(8), vec![0; 4], &[], None).unwrap_err();
        assert!(matches!(err, CompileError::Schedule(_)));
    }
}
