//! Lowering: AST + schedule → executable plan (paper §5's "code generation"
//! decisions, minus the C++ text — see [`crate::ir::codegen`] for that).

use crate::ir::analysis::{self, AnalysisError};
use crate::ir::ast::ProgramAst;
use crate::ir::transform::{transform_constant_sum, CountUdf};
use crate::schedule::{Direction, PriorityUpdateStrategy, Schedule, ScheduleError};
use std::fmt;

/// Everything the engines need to execute one ordered program under one
/// schedule, with all compiler decisions resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Program name.
    pub program: String,
    /// Bucket update strategy.
    pub strategy: PriorityUpdateStrategy,
    /// Traversal direction (lazy only).
    pub direction: Direction,
    /// Coarsening factor Δ.
    pub delta: i64,
    /// Whether generated push code needs atomic priority updates.
    pub needs_atomics: bool,
    /// Whether generated code needs deduplication flags.
    pub needs_dedup: bool,
    /// The transformed `(vertex, count)` UDF when the histogram strategy is
    /// selected.
    pub count_udf: Option<CountUdf>,
    /// Fusion threshold for `eager_with_fusion`.
    pub fusion_threshold: Option<usize>,
    /// Materialized buckets for lazy strategies.
    pub num_open_buckets: usize,
    /// `lower_first` ordering?
    pub lower_first: bool,
}

/// Compile-time rejections, mirroring the checks of paper §5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The ordered loop references an unknown UDF.
    UnknownUdf(String),
    /// A schedule constraint failed (shared with the runtime checks).
    Schedule(ScheduleError),
    /// A UDF analysis failed.
    Analysis(AnalysisError),
    /// The eager transform pattern check failed: the bucket has other uses.
    EagerPatternMismatch,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownUdf(name) => {
                write!(f, "ordered loop applies unknown UDF `{name}`")
            }
            CompileError::Schedule(e) => write!(f, "schedule error: {e}"),
            CompileError::Analysis(e) => write!(f, "analysis error: {e}"),
            CompileError::EagerPatternMismatch => write!(
                f,
                "eager transform requires the dequeued bucket to have no use besides applyUpdatePriority"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ScheduleError> for CompileError {
    fn from(e: ScheduleError) -> Self {
        CompileError::Schedule(e)
    }
}

impl From<AnalysisError> for CompileError {
    fn from(e: AnalysisError) -> Self {
        CompileError::Analysis(e)
    }
}

/// Lowers `program` under `schedule` into a [`Plan`].
///
/// # Errors
///
/// Rejects illegal combinations: coarsening without permission, eager with
/// `higher_first` or a used bucket, histogram without a constant-sum UDF,
/// `DensePull` with eager, bad parameters.
pub fn lower(program: &ProgramAst, schedule: &Schedule) -> Result<Plan, CompileError> {
    let udf = program
        .loop_udf()
        .ok_or_else(|| CompileError::UnknownUdf(program.ordered_loop.udf.clone()))?;

    if schedule.delta < 1 {
        return Err(ScheduleError::InvalidDelta {
            delta: schedule.delta,
        }
        .into());
    }
    if schedule.delta > 1 && !program.pq.allow_coarsening {
        return Err(ScheduleError::CoarseningNotAllowed {
            delta: schedule.delta,
        }
        .into());
    }
    if schedule.is_eager() {
        if !program.pq.lower_first {
            return Err(ScheduleError::EagerRequiresLowerFirst.into());
        }
        if schedule.direction == Direction::DensePull {
            return Err(ScheduleError::DensePullRequiresLazy.into());
        }
        if !analysis::eager_transform_applicable(program) {
            return Err(CompileError::EagerPatternMismatch);
        }
    }
    if schedule.priority_update == PriorityUpdateStrategy::EagerWithFusion
        && schedule.fusion_threshold == 0
    {
        return Err(ScheduleError::InvalidFusionThreshold.into());
    }

    let count_udf = if schedule.priority_update == PriorityUpdateStrategy::LazyConstantSum {
        Some(transform_constant_sum(udf)?)
    } else {
        None
    };

    let needs_atomics = match schedule.direction {
        Direction::SparsePush => analysis::needs_atomics_push(udf)?,
        Direction::DensePull => analysis::needs_atomics_pull(udf)?,
    };
    // Sum updates may hit a vertex many times; processing such vertices more
    // than once breaks correctness, so dedup is required (the paper calls
    // this out for k-core).
    let needs_dedup = udf
        .body
        .iter()
        .any(|s| matches!(s, crate::ir::ast::Stmt::UpdateSum { .. }));

    Ok(Plan {
        program: program.name.clone(),
        strategy: schedule.priority_update,
        direction: schedule.direction,
        delta: schedule.delta,
        needs_atomics,
        needs_dedup,
        count_udf,
        fusion_threshold: (schedule.priority_update == PriorityUpdateStrategy::EagerWithFusion)
            .then_some(schedule.fusion_threshold),
        num_open_buckets: schedule.num_open_buckets,
        lower_first: program.pq.lower_first,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::programs;

    #[test]
    fn sssp_eager_plan_resolves_decisions() {
        let plan = lower(&programs::delta_stepping(), &Schedule::eager_with_fusion(8)).unwrap();
        assert_eq!(plan.strategy, PriorityUpdateStrategy::EagerWithFusion);
        assert_eq!(plan.delta, 8);
        assert!(plan.needs_atomics);
        assert!(!plan.needs_dedup);
        assert_eq!(plan.fusion_threshold, Some(1000));
        assert!(plan.count_udf.is_none());
    }

    #[test]
    fn sssp_dense_pull_drops_atomics() {
        let s = Schedule::lazy(4).config_apply_direction(Direction::DensePull);
        let plan = lower(&programs::delta_stepping(), &s).unwrap();
        assert!(!plan.needs_atomics, "pull owns destinations");
    }

    #[test]
    fn kcore_histogram_plan_contains_transformed_udf() {
        let plan = lower(&programs::kcore(), &Schedule::lazy_constant_sum()).unwrap();
        let count_udf = plan.count_udf.unwrap();
        assert_eq!(count_udf.constant, -1);
        assert!(plan.needs_dedup);
    }

    #[test]
    fn kcore_rejects_coarsening() {
        let err = lower(&programs::kcore(), &Schedule::lazy(16)).unwrap_err();
        assert_eq!(
            err,
            CompileError::Schedule(ScheduleError::CoarseningNotAllowed { delta: 16 })
        );
    }

    #[test]
    fn sssp_histogram_rejected_by_analysis() {
        let err = lower(&programs::delta_stepping(), &Schedule::lazy_constant_sum()).unwrap_err();
        assert!(matches!(err, CompileError::Analysis(_)));
    }

    #[test]
    fn eager_rejected_when_bucket_has_other_uses() {
        let mut prog = programs::delta_stepping();
        prog.ordered_loop
            .other_bucket_uses
            .push("var n : int = bucket.getVertexSetSize();".into());
        let err = lower(&prog, &Schedule::eager(2)).unwrap_err();
        assert_eq!(err, CompileError::EagerPatternMismatch);
        // Lazy remains legal.
        assert!(lower(&prog, &Schedule::lazy(2)).is_ok());
    }

    #[test]
    fn unknown_udf_is_reported() {
        let mut prog = programs::delta_stepping();
        prog.ordered_loop.udf = "missing".into();
        assert_eq!(
            lower(&prog, &Schedule::lazy(1)).unwrap_err(),
            CompileError::UnknownUdf("missing".into())
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = CompileError::EagerPatternMismatch;
        assert!(e.to_string().contains("applyUpdatePriority"));
        let e: CompileError = AnalysisError::NoPriorityUpdate.into();
        assert!(e.to_string().contains("analysis error"));
    }
}
