//! Ready-made ASTs for the paper's running examples.

use crate::ir::ast::{Expr, OrderedLoop, PqDecl, ProgramAst, Stmt, UdfDef};

/// Δ-stepping SSSP (paper Figure 3):
///
/// ```text
/// func updateEdge(src : Vertex, dst : Vertex, weight : int)
///     var new_dist : int = dist[src] + weight;
///     pq.updatePriorityMin(dst, dist[dst], new_dist);
/// end
/// ```
pub fn delta_stepping() -> ProgramAst {
    ProgramAst {
        name: "sssp_delta_stepping".into(),
        pq: PqDecl {
            allow_coarsening: true,
            lower_first: true,
            priority_vector: "dist".into(),
            start_vertex: Some("start_vertex".into()),
        },
        udfs: vec![UdfDef {
            name: "updateEdge".into(),
            body: vec![
                Stmt::Let {
                    name: "new_dist".into(),
                    value: Expr::add(Expr::priority_of(Expr::Src), Expr::Weight),
                },
                Stmt::UpdateMin {
                    target: Expr::Dst,
                    value: Expr::Var("new_dist".into()),
                },
            ],
        }],
        ordered_loop: OrderedLoop {
            label: "s1".into(),
            udf: "updateEdge".into(),
            other_bucket_uses: vec![],
        },
    }
}

/// Weighted BFS: identical to Δ-stepping; wBFS is "a special case of
/// Δ-stepping ... with delta fixed to 1" (paper §6.1), so only the schedule
/// differs.
pub fn wbfs() -> ProgramAst {
    let mut prog = delta_stepping();
    prog.name = "wbfs".into();
    prog
}

/// k-core peeling (paper Figure 10 top):
///
/// ```text
/// func apply_f(src: Vertex, dst: Vertex)
///     var k: int = pq.get_current_priority();
///     pq.updatePrioritySum(dst, -1, k);
/// end
/// ```
pub fn kcore() -> ProgramAst {
    ProgramAst {
        name: "kcore".into(),
        pq: PqDecl {
            allow_coarsening: false,
            lower_first: true,
            priority_vector: "degrees".into(),
            start_vertex: None,
        },
        udfs: vec![UdfDef {
            name: "apply_f".into(),
            body: vec![
                Stmt::Let {
                    name: "k".into(),
                    value: Expr::CurrentPriority,
                },
                Stmt::UpdateSum {
                    target: Expr::Dst,
                    delta: Expr::Int(-1),
                    threshold: Expr::Var("k".into()),
                },
            ],
        }],
        ordered_loop: OrderedLoop {
            label: "s1".into(),
            udf: "apply_f".into(),
            other_bucket_uses: vec![],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_stepping_prints_like_figure_3() {
        let text = delta_stepping().to_string();
        assert!(text.contains("var new_dist : int = (priority[src] + weight);"));
        assert!(text.contains("pq.updatePriorityMin(dst, new_dist);"));
        assert!(text.contains("applyUpdatePriority(updateEdge)"));
    }

    #[test]
    fn kcore_prints_like_figure_10() {
        let text = kcore().to_string();
        assert!(text.contains("var k : int = pq.get_current_priority();"));
        assert!(text.contains("pq.updatePrioritySum(dst, -1, k);"));
    }

    #[test]
    fn wbfs_shares_sssp_udf() {
        assert_eq!(wbfs().udfs, delta_stepping().udfs);
        assert_eq!(wbfs().name, "wbfs");
    }

    #[test]
    fn coarsening_flags_match_section_2() {
        // §2: coarsening is used in SSSP-family but not k-core/SetCover.
        assert!(delta_stepping().pq.allow_coarsening);
        assert!(!kcore().pq.allow_coarsening);
    }
}
