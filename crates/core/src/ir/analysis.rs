//! Program analyses over UDF bodies (paper §5.1–5.2).
//!
//! The compiler needs four facts about a user-defined function before it can
//! pick code generation strategies:
//!
//! 1. **Which vertices it writes** — updates targeting the edge destination
//!    under push traversal race across threads and need atomics; pull
//!    traversal makes destination writes owner-exclusive (Figure 9(b)).
//! 2. **Whether there is exactly one priority update** — required by the
//!    histogram transform.
//! 3. **Whether the update is a constant sum** — `updatePrioritySum(dst, c,
//!    current_priority)` with compile-time-constant `c` (Figure 10); `let`
//!    bindings are resolved so the idiomatic `var k = getCurrentPriority()`
//!    form is recognized.
//! 4. **Whether the ordered loop matches the eager pattern** — the dequeued
//!    bucket must have no use other than `applyUpdatePriority` (§5.2).

use crate::ir::ast::{Expr, ProgramAst, Stmt, UdfDef};
use std::collections::HashMap;
use std::fmt;

/// Analysis failures (reported like compiler diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A variable was used before being bound.
    UnboundVariable(String),
    /// The UDF contains no priority update at all.
    NoPriorityUpdate,
    /// The UDF contains more than one priority update (the histogram
    /// transform requires exactly one; §5.1: "the compiler ensures that
    /// there is only one priority update operator in the user-defined
    /// function").
    MultiplePriorityUpdates(usize),
    /// The single update is not an `updatePrioritySum`.
    NotASumUpdate,
    /// The sum's delta is not a compile-time constant.
    NonConstantDelta,
    /// The sum's threshold is not the current priority.
    ThresholdNotCurrentPriority,
    /// The update's target is not the edge destination.
    TargetNotDst,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnboundVariable(name) => write!(f, "use of unbound variable `{name}`"),
            AnalysisError::NoPriorityUpdate => write!(f, "UDF performs no priority update"),
            AnalysisError::MultiplePriorityUpdates(n) => {
                write!(f, "UDF performs {n} priority updates; exactly one required")
            }
            AnalysisError::NotASumUpdate => write!(f, "priority update is not updatePrioritySum"),
            AnalysisError::NonConstantDelta => {
                write!(f, "updatePrioritySum delta is not a compile-time constant")
            }
            AnalysisError::ThresholdNotCurrentPriority => {
                write!(f, "updatePrioritySum threshold is not the current priority")
            }
            AnalysisError::TargetNotDst => write!(f, "priority update target is not `dst`"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Which UDF parameter a priority update writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteTarget {
    /// The edge destination (the common case).
    Dst,
    /// The edge source.
    Src,
    /// Something computed (conservatively treated as any vertex).
    Unknown,
}

/// Resolves `let` bindings so later analyses see through local names.
/// Returns the substituted priority-update statements.
fn resolved_updates(udf: &UdfDef) -> Result<Vec<Stmt>, AnalysisError> {
    let mut env: HashMap<&str, Expr> = HashMap::new();
    let mut updates = Vec::new();
    for stmt in &udf.body {
        match stmt {
            Stmt::Let { name, value } => {
                let value = substitute(value, &env)?;
                env.insert(name, value);
            }
            Stmt::UpdateMin { target, value } => updates.push(Stmt::UpdateMin {
                target: substitute(target, &env)?,
                value: substitute(value, &env)?,
            }),
            Stmt::UpdateMax { target, value } => updates.push(Stmt::UpdateMax {
                target: substitute(target, &env)?,
                value: substitute(value, &env)?,
            }),
            Stmt::UpdateSum {
                target,
                delta,
                threshold,
            } => updates.push(Stmt::UpdateSum {
                target: substitute(target, &env)?,
                delta: substitute(delta, &env)?,
                threshold: substitute(threshold, &env)?,
            }),
        }
    }
    Ok(updates)
}

fn substitute(expr: &Expr, env: &HashMap<&str, Expr>) -> Result<Expr, AnalysisError> {
    Ok(match expr {
        Expr::Var(name) => env
            .get(name.as_str())
            .cloned()
            .ok_or_else(|| AnalysisError::UnboundVariable(name.clone()))?,
        Expr::PriorityOf(e) => Expr::priority_of(substitute(e, env)?),
        Expr::Add(a, b) => Expr::add(substitute(a, env)?, substitute(b, env)?),
        Expr::Sub(a, b) => Expr::sub(substitute(a, env)?, substitute(b, env)?),
        Expr::Mul(a, b) => Expr::mul(substitute(a, env)?, substitute(b, env)?),
        Expr::Neg(a) => Expr::neg(substitute(a, env)?),
        other => other.clone(),
    })
}

/// Constant-folds an expression to an integer if possible.
fn const_eval(expr: &Expr) -> Option<i64> {
    match expr {
        Expr::Int(v) => Some(*v),
        Expr::Add(a, b) => Some(const_eval(a)? + const_eval(b)?),
        Expr::Sub(a, b) => Some(const_eval(a)? - const_eval(b)?),
        Expr::Mul(a, b) => Some(const_eval(a)? * const_eval(b)?),
        Expr::Neg(a) => Some(-const_eval(a)?),
        _ => None,
    }
}

fn target_of(expr: &Expr) -> WriteTarget {
    match expr {
        Expr::Dst => WriteTarget::Dst,
        Expr::Src => WriteTarget::Src,
        _ => WriteTarget::Unknown,
    }
}

/// Write targets of every priority update in `udf`.
///
/// # Errors
///
/// Fails on unbound variables.
pub fn write_targets(udf: &UdfDef) -> Result<Vec<WriteTarget>, AnalysisError> {
    Ok(resolved_updates(udf)?
        .iter()
        .map(|stmt| match stmt {
            Stmt::UpdateMin { target, .. }
            | Stmt::UpdateMax { target, .. }
            | Stmt::UpdateSum { target, .. } => target_of(target),
            Stmt::Let { .. } => unreachable!("resolved_updates strips lets"),
        })
        .collect())
}

/// Dependence analysis: does push-direction execution of `udf` have
/// write-write conflicts requiring atomics? (§5.1: "the compiler uses
/// dependence analysis ... to determine if there are write-write conflicts
/// and insert atomics instructions as necessary".)
///
/// Under push traversal, many sources share a destination, so any write to
/// `dst` (or to an unknown vertex) conflicts. Writes to `src` alone do not:
/// each frontier vertex is processed by one thread per round.
///
/// # Errors
///
/// Fails on unbound variables.
pub fn needs_atomics_push(udf: &UdfDef) -> Result<bool, AnalysisError> {
    Ok(write_targets(udf)?
        .iter()
        .any(|t| matches!(t, WriteTarget::Dst | WriteTarget::Unknown)))
}

/// Under pull traversal the destination is owned by the executing thread;
/// only `src`/unknown writes conflict (Figure 9(b): "no atomics are needed
/// for the destination nodes").
///
/// # Errors
///
/// Fails on unbound variables.
pub fn needs_atomics_pull(udf: &UdfDef) -> Result<bool, AnalysisError> {
    Ok(write_targets(udf)?
        .iter()
        .any(|t| matches!(t, WriteTarget::Src | WriteTarget::Unknown)))
}

/// Result of the constant-sum analysis (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantSum {
    /// The compile-time-constant delta (−1 for k-core).
    pub delta: i64,
}

/// Proves `udf` is exactly one `updatePrioritySum(dst, c, current_priority)`
/// and extracts `c` — the precondition for the histogram strategy.
///
/// # Errors
///
/// Reports precisely which requirement failed, mirroring the compiler's
/// diagnostics.
pub fn constant_sum(udf: &UdfDef) -> Result<ConstantSum, AnalysisError> {
    let updates = resolved_updates(udf)?;
    match updates.len() {
        0 => return Err(AnalysisError::NoPriorityUpdate),
        1 => {}
        n => return Err(AnalysisError::MultiplePriorityUpdates(n)),
    }
    let Stmt::UpdateSum {
        target,
        delta,
        threshold,
    } = &updates[0]
    else {
        return Err(AnalysisError::NotASumUpdate);
    };
    if target_of(target) != WriteTarget::Dst {
        return Err(AnalysisError::TargetNotDst);
    }
    let delta = const_eval(delta).ok_or(AnalysisError::NonConstantDelta)?;
    if *threshold != Expr::CurrentPriority {
        return Err(AnalysisError::ThresholdNotCurrentPriority);
    }
    Ok(ConstantSum { delta })
}

/// The §5.2 loop-pattern check: the eager transform may replace the while
/// loop only when the dequeued bucket has no other use.
pub fn eager_transform_applicable(program: &ProgramAst) -> bool {
    program.ordered_loop.other_bucket_uses.is_empty() && program.loop_udf().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::programs;

    #[test]
    fn sssp_udf_writes_dst_and_needs_push_atomics() {
        let prog = programs::delta_stepping();
        let udf = prog.loop_udf().unwrap();
        assert_eq!(write_targets(udf).unwrap(), vec![WriteTarget::Dst]);
        assert!(needs_atomics_push(udf).unwrap());
        assert!(!needs_atomics_pull(udf).unwrap());
    }

    #[test]
    fn sssp_udf_is_not_constant_sum() {
        let prog = programs::delta_stepping();
        let udf = prog.loop_udf().unwrap();
        assert_eq!(constant_sum(udf).unwrap_err(), AnalysisError::NotASumUpdate);
    }

    #[test]
    fn kcore_udf_is_constant_sum_minus_one() {
        // Figure 10 top: var k = getCurrentPriority(); updatePrioritySum(dst, -1, k)
        let prog = programs::kcore();
        let udf = prog.loop_udf().unwrap();
        assert_eq!(constant_sum(udf).unwrap(), ConstantSum { delta: -1 });
    }

    #[test]
    fn unbound_variable_is_reported() {
        let udf = UdfDef {
            name: "bad".into(),
            body: vec![Stmt::UpdateMin {
                target: Expr::Dst,
                value: Expr::Var("ghost".into()),
            }],
        };
        assert_eq!(
            write_targets(&udf).unwrap_err(),
            AnalysisError::UnboundVariable("ghost".into())
        );
    }

    #[test]
    fn multiple_updates_rejected_for_constant_sum() {
        let udf = UdfDef {
            name: "double".into(),
            body: vec![
                Stmt::UpdateSum {
                    target: Expr::Dst,
                    delta: Expr::Int(-1),
                    threshold: Expr::CurrentPriority,
                },
                Stmt::UpdateSum {
                    target: Expr::Dst,
                    delta: Expr::Int(-1),
                    threshold: Expr::CurrentPriority,
                },
            ],
        };
        assert_eq!(
            constant_sum(&udf).unwrap_err(),
            AnalysisError::MultiplePriorityUpdates(2)
        );
    }

    #[test]
    fn non_constant_delta_rejected() {
        let udf = UdfDef {
            name: "w".into(),
            body: vec![Stmt::UpdateSum {
                target: Expr::Dst,
                delta: Expr::Weight,
                threshold: Expr::CurrentPriority,
            }],
        };
        assert_eq!(
            constant_sum(&udf).unwrap_err(),
            AnalysisError::NonConstantDelta
        );
    }

    #[test]
    fn folded_constant_delta_accepted() {
        let udf = UdfDef {
            name: "folded".into(),
            body: vec![Stmt::UpdateSum {
                target: Expr::Dst,
                delta: Expr::neg(Expr::mul(Expr::Int(1), Expr::Int(1))),
                threshold: Expr::CurrentPriority,
            }],
        };
        assert_eq!(constant_sum(&udf).unwrap().delta, -1);
    }

    #[test]
    fn wrong_threshold_rejected() {
        let udf = UdfDef {
            name: "thr".into(),
            body: vec![Stmt::UpdateSum {
                target: Expr::Dst,
                delta: Expr::Int(-1),
                threshold: Expr::Int(0),
            }],
        };
        assert_eq!(
            constant_sum(&udf).unwrap_err(),
            AnalysisError::ThresholdNotCurrentPriority
        );
    }

    #[test]
    fn src_target_rejected_for_constant_sum() {
        let udf = UdfDef {
            name: "srcy".into(),
            body: vec![Stmt::UpdateSum {
                target: Expr::Src,
                delta: Expr::Int(-1),
                threshold: Expr::CurrentPriority,
            }],
        };
        assert_eq!(constant_sum(&udf).unwrap_err(), AnalysisError::TargetNotDst);
        assert!(!needs_atomics_push(&udf).unwrap());
        assert!(needs_atomics_pull(&udf).unwrap());
    }

    #[test]
    fn empty_udf_has_no_update() {
        let udf = UdfDef {
            name: "empty".into(),
            body: vec![],
        };
        assert_eq!(
            constant_sum(&udf).unwrap_err(),
            AnalysisError::NoPriorityUpdate
        );
        assert!(!needs_atomics_push(&udf).unwrap());
    }

    #[test]
    fn eager_pattern_check() {
        let mut prog = programs::delta_stepping();
        assert!(eager_transform_applicable(&prog));
        prog.ordered_loop
            .other_bucket_uses
            .push("print bucket.getVertexSetSize();".into());
        assert!(!eager_transform_applicable(&prog));
    }
}
