//! The constant-sum UDF transformation (paper Figure 10).
//!
//! Given a UDF proven by [`crate::ir::analysis::constant_sum`] to be exactly
//! `updatePrioritySum(dst, c, current_priority)`, the compiler rewrites it
//! into a `(vertex, count)` function applied once per distinct vertex after
//! a histogram reduction:
//!
//! ```cpp
//! apply_f_transformed = [&] (uint vertex, uint count) {
//!     int k = pq->get_current_priority();
//!     int priority = pq->priority_vector[vertex];
//!     if (priority > k) {
//!         uint __new_pri = std::max(priority + (-1) * count, k);
//!         pq->priority_vector[vertex] = __new_pri;
//!         return wrap(vertex, pq->get_bucket(__new_pri));
//!     }
//! }
//! ```

use crate::ir::analysis::{self, AnalysisError};
use crate::ir::ast::UdfDef;
use std::fmt;

/// The transformed `(vertex, count)` function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountUdf {
    /// Derived name (`<udf>_transformed`, as in Figure 10).
    pub name: String,
    /// The constant applied per occurrence (−1 for k-core).
    pub constant: i64,
}

impl CountUdf {
    /// Applies the transformed function semantics to a priority value:
    /// returns the new priority for a vertex seen `count` times while the
    /// current priority is `k`, or `None` if the vertex is already
    /// finalized (`priority <= k`).
    pub fn apply(&self, priority: i64, count: u32, k: i64) -> Option<i64> {
        if priority > k {
            Some((priority + self.constant * i64::from(count)).max(k))
        } else {
            None
        }
    }
}

impl fmt::Display for CountUdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} = [&] (uint vertex, uint count) {{", self.name)?;
        writeln!(f, "    int k = pq->get_current_priority();")?;
        writeln!(f, "    int priority = pq->priority_vector[vertex];")?;
        writeln!(f, "    if (priority > k) {{")?;
        writeln!(
            f,
            "        uint __new_pri = std::max(priority + ({}) * count, k);",
            self.constant
        )?;
        writeln!(f, "        pq->priority_vector[vertex] = __new_pri;")?;
        writeln!(
            f,
            "        return wrap(vertex, pq->get_bucket(__new_pri));}}}}"
        )
    }
}

/// Runs the constant-sum analysis and, on success, produces the transformed
/// function.
///
/// # Errors
///
/// Propagates the analysis failure when the UDF is not a constant sum.
pub fn transform_constant_sum(udf: &UdfDef) -> Result<CountUdf, AnalysisError> {
    let info = analysis::constant_sum(udf)?;
    Ok(CountUdf {
        name: format!("{}_transformed", udf.name),
        constant: info.delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::programs;

    #[test]
    fn kcore_transforms_to_figure_10_bottom() {
        let prog = programs::kcore();
        let t = transform_constant_sum(prog.loop_udf().unwrap()).unwrap();
        assert_eq!(t.name, "apply_f_transformed");
        assert_eq!(t.constant, -1);
        let text = t.to_string();
        assert!(text.contains("int k = pq->get_current_priority();"));
        assert!(text.contains("std::max(priority + (-1) * count, k)"));
        assert!(text.contains("return wrap(vertex, pq->get_bucket(__new_pri));"));
    }

    #[test]
    fn transformed_semantics_clamp_at_k() {
        let t = CountUdf {
            name: "t".into(),
            constant: -1,
        };
        assert_eq!(t.apply(10, 3, 5), Some(7));
        assert_eq!(t.apply(10, 20, 5), Some(5)); // clamped
        assert_eq!(t.apply(5, 1, 5), None); // finalized
        assert_eq!(t.apply(3, 1, 5), None); // below floor
    }

    #[test]
    fn sssp_udf_is_rejected() {
        let prog = programs::delta_stepping();
        assert!(transform_constant_sum(prog.loop_udf().unwrap()).is_err());
    }
}
