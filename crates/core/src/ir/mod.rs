//! The mini-DSL compiler pipeline (paper §5).
//!
//! GraphIt is a standalone compiler; this embedded reproduction keeps the
//! parts of it that the paper contributes and evaluates:
//!
//! * [`ast`] — program representation: the priority-queue declaration, UDF
//!   bodies built from priority-update operators, and the ordered while
//!   loop of Figure 3.
//! * [`analysis`] — the §5 program analyses: priority-update write targets
//!   (⇒ atomics), single-update checking, **constant-sum detection** with
//!   let-binding resolution (Figure 10), and the while-loop pattern check
//!   that legalizes the eager transform.
//! * [`transform`] — the constant-sum UDF transformation producing the
//!   `(vertex, count)` function of Figure 10 (bottom).
//! * [`plan`] — lowering an AST + [`crate::schedule::Schedule`] into an
//!   executable [`plan::Plan`], rejecting illegal combinations exactly where
//!   the paper's compiler would.
//! * [`codegen`] — pseudo-C++ emission reproducing the three generated
//!   programs of Figure 9 (lazy SparsePush, lazy DensePull, eager).
//! * [`interp`] — a register-machine compiler for UDF bodies plus a driver
//!   that runs lowered plans on the runtime engines, closing the loop from
//!   DSL text to executed algorithm.
//! * [`programs`] — ready-made ASTs for the paper's running examples
//!   (Δ-stepping SSSP of Figure 3, k-core of Figure 10).

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod interp;
pub mod plan;
pub mod programs;
pub mod transform;
