//! Program representation for ordered graph programs.
//!
//! Models the priority-relevant subset of the GraphIt algorithm language:
//! the priority queue declaration of Figure 3 (lines 5, 15–16), user-defined
//! edge functions built from integer expressions and priority-update
//! operators (lines 7–10), and the ordered while loop (lines 17–21).

use std::fmt;

/// Integer-valued expressions inside UDF bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Reference to a `let`-bound local.
    Var(String),
    /// The edge's source vertex (as an id usable in priority reads).
    Src,
    /// The edge's destination vertex.
    Dst,
    /// The edge weight.
    Weight,
    /// `priority_vector[e]` — read the priority of the vertex `e` evaluates
    /// to (`dist[src]` in Figure 3 line 8).
    PriorityOf(Box<Expr>),
    /// `pq.getCurrentPriority()`.
    CurrentPriority,
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

// These are by-value AST constructors (`Expr::add(a, b)`), not operator
// methods; the std-trait signatures (`self`-taking, `Output`-producing)
// don't fit a builder over boxed nodes.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `a + b` without the `Box` noise.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `-a`.
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }

    /// `priority_vector[e]`.
    pub fn priority_of(e: Expr) -> Expr {
        Expr::PriorityOf(Box::new(e))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Src => write!(f, "src"),
            Expr::Dst => write!(f, "dst"),
            Expr::Weight => write!(f, "weight"),
            Expr::PriorityOf(e) => write!(f, "priority[{e}]"),
            Expr::CurrentPriority => write!(f, "pq.get_current_priority()"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Statements inside UDF bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var name : int = value;`
    Let {
        /// Bound name.
        name: String,
        /// Bound value.
        value: Expr,
    },
    /// `pq.updatePriorityMin(target, value);`
    UpdateMin {
        /// The vertex whose priority changes.
        target: Expr,
        /// The candidate new priority.
        value: Expr,
    },
    /// `pq.updatePriorityMax(target, value);`
    UpdateMax {
        /// The vertex whose priority changes.
        target: Expr,
        /// The candidate new priority.
        value: Expr,
    },
    /// `pq.updatePrioritySum(target, delta, threshold);`
    UpdateSum {
        /// The vertex whose priority changes.
        target: Expr,
        /// Amount added to the priority.
        delta: Expr,
        /// Minimum threshold the priority may not cross.
        threshold: Expr,
    },
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Let { name, value } => write!(f, "var {name} : int = {value};"),
            Stmt::UpdateMin { target, value } => {
                write!(f, "pq.updatePriorityMin({target}, {value});")
            }
            Stmt::UpdateMax { target, value } => {
                write!(f, "pq.updatePriorityMax({target}, {value});")
            }
            Stmt::UpdateSum {
                target,
                delta,
                threshold,
            } => write!(f, "pq.updatePrioritySum({target}, {delta}, {threshold});"),
        }
    }
}

/// A user-defined edge function (`func updateEdge(src, dst, weight)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfDef {
    /// Function name.
    pub name: String,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl fmt::Display for UdfDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "func {}(src : Vertex, dst : Vertex, weight : int)",
            self.name
        )?;
        for stmt in &self.body {
            writeln!(f, "    {stmt}")?;
        }
        write!(f, "end")
    }
}

/// The priority-queue declaration (Figure 3 lines 15–16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqDecl {
    /// First constructor argument: is priority coarsening allowed?
    pub allow_coarsening: bool,
    /// `"lower_first"` (true) or `"higher_first"` (false).
    pub lower_first: bool,
    /// Name of the vector backing priorities (`dist` for SSSP).
    pub priority_vector: String,
    /// Optional start vertex variable name.
    pub start_vertex: Option<String>,
}

/// The ordered while loop driving execution (Figure 3 lines 17–21).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedLoop {
    /// Scheduling label on the `applyUpdatePriority` statement (`s1`).
    pub label: String,
    /// Name of the UDF applied to each bucket's out-edges.
    pub udf: String,
    /// Other statements using the dequeued bucket. Must be empty for the
    /// eager transform (§5.2: "the analysis checks that there is no other
    /// use of the generated vertexset (bucket) except for the
    /// applyUpdatePriority operator").
    pub other_bucket_uses: Vec<String>,
}

/// A whole ordered program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramAst {
    /// Program name (for diagnostics and codegen headers).
    pub name: String,
    /// The priority queue declaration.
    pub pq: PqDecl,
    /// All UDFs (the loop references one by name).
    pub udfs: Vec<UdfDef>,
    /// The ordered loop.
    pub ordered_loop: OrderedLoop,
}

impl ProgramAst {
    /// Finds the UDF the ordered loop applies.
    pub fn loop_udf(&self) -> Option<&UdfDef> {
        self.udfs.iter().find(|u| u.name == self.ordered_loop.udf)
    }
}

impl fmt::Display for ProgramAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// program: {}", self.name)?;
        writeln!(
            f,
            "const pq: priority_queue{{Vertex}}(int)({}, \"{}\", {}, {});",
            self.pq.allow_coarsening,
            if self.pq.lower_first {
                "lower_first"
            } else {
                "higher_first"
            },
            self.pq.priority_vector,
            self.pq.start_vertex.as_deref().unwrap_or("-")
        )?;
        for udf in &self.udfs {
            writeln!(f, "{udf}")?;
        }
        writeln!(f, "while (pq.finished() == false)")?;
        writeln!(
            f,
            "    var bucket : vertexset{{Vertex}} = pq.dequeueReadySet();"
        )?;
        writeln!(
            f,
            "    #{}# edges.from(bucket).applyUpdatePriority({});",
            self.ordered_loop.label, self.ordered_loop.udf
        )?;
        for extra in &self.ordered_loop.other_bucket_uses {
            writeln!(f, "    {extra}")?;
        }
        writeln!(f, "    delete bucket;")?;
        write!(f, "end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sssp_udf() -> UdfDef {
        UdfDef {
            name: "updateEdge".into(),
            body: vec![
                Stmt::Let {
                    name: "new_dist".into(),
                    value: Expr::add(Expr::priority_of(Expr::Src), Expr::Weight),
                },
                Stmt::UpdateMin {
                    target: Expr::Dst,
                    value: Expr::Var("new_dist".into()),
                },
            ],
        }
    }

    #[test]
    fn expr_display_matches_dsl_syntax() {
        let e = Expr::add(Expr::priority_of(Expr::Src), Expr::Weight);
        assert_eq!(e.to_string(), "(priority[src] + weight)");
        assert_eq!(Expr::neg(Expr::Int(1)).to_string(), "(-1)");
        assert_eq!(
            Expr::mul(Expr::Var("k".into()), Expr::Int(2)).to_string(),
            "(k * 2)"
        );
        assert_eq!(
            Expr::sub(Expr::CurrentPriority, Expr::Int(1)).to_string(),
            "(pq.get_current_priority() - 1)"
        );
    }

    #[test]
    fn udf_display_looks_like_figure_3() {
        let text = sssp_udf().to_string();
        assert!(text.contains("func updateEdge"));
        assert!(text.contains("var new_dist : int = (priority[src] + weight);"));
        assert!(text.contains("pq.updatePriorityMin(dst, new_dist);"));
    }

    #[test]
    fn program_display_includes_loop() {
        let prog = ProgramAst {
            name: "sssp".into(),
            pq: PqDecl {
                allow_coarsening: true,
                lower_first: true,
                priority_vector: "dist".into(),
                start_vertex: Some("start_vertex".into()),
            },
            udfs: vec![sssp_udf()],
            ordered_loop: OrderedLoop {
                label: "s1".into(),
                udf: "updateEdge".into(),
                other_bucket_uses: vec![],
            },
        };
        let text = prog.to_string();
        assert!(text.contains("dequeueReadySet"));
        assert!(text.contains("#s1# edges.from(bucket).applyUpdatePriority(updateEdge);"));
        assert!(prog.loop_udf().is_some());
    }

    #[test]
    fn loop_udf_missing_is_none() {
        let prog = ProgramAst {
            name: "broken".into(),
            pq: PqDecl {
                allow_coarsening: false,
                lower_first: true,
                priority_vector: "p".into(),
                start_vertex: None,
            },
            udfs: vec![],
            ordered_loop: OrderedLoop {
                label: "s1".into(),
                udf: "nope".into(),
                other_bucket_uses: vec![],
            },
        };
        assert!(prog.loop_udf().is_none());
    }
}
