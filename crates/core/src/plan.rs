//! Per-graph query plans: the server-side unit of schedule selection.
//!
//! The paper's headline result is that *schedule choice dominates ordered
//! algorithm performance* (§6: the same Δ-stepping code spans orders of
//! magnitude depending on strategy and Δ), and §6.2 gives concrete
//! graph-shape heuristics — road networks want Δ in 2^13–2^17, social
//! networks want Δ in 1–100. A [`QueryPlan`] packages that decision: *for
//! this algorithm family, on this graph, execute with this schedule*.
//!
//! Plans are produced three ways, recorded in [`PlanOrigin`]:
//!
//! * **Heuristic** — seeded from a [`GraphProfile`] (average degree, weight
//!   range, coordinates) when a graph becomes resident;
//! * **Tuned** — installed by the autotuner after measuring real executions
//!   against the resident graph (paper §5.3 / §6.2);
//! * **Pinned** — the client forced an explicit schedule for one query,
//!   bypassing the cache.
//!
//! [`QueryPlan::validate`] is the *family-level* legality check: the subset
//! of [`crate::engine::validate`]'s rules that can be decided from the
//! algorithm family alone, mirroring the documented schedule support matrix
//! (`docs/ARCHITECTURE.md`). A planner — cache or tuner — must never
//! install a plan this check rejects.

use crate::schedule::{Direction, PriorityUpdateStrategy, Schedule, ScheduleError};
use priograph_graph::CsrGraph;
use std::fmt;

/// The algorithm families the planning layer distinguishes. Each family has
/// its own legal schedule subspace (and therefore its own plan cache slot).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AlgoFamily {
    /// Full single-source shortest paths (Δ-stepping; coarsening legal).
    Sssp,
    /// Weighted BFS — Δ-stepping with Δ pinned to 1 by the driver.
    Wbfs,
    /// k-core decomposition — strict priority peeling, coarsening illegal,
    /// the only bundled family whose UDF is a constant-sum update.
    KCore,
}

impl AlgoFamily {
    /// Every family, for iteration (cache seeding, listings).
    pub const ALL: [AlgoFamily; 3] = [AlgoFamily::Sssp, AlgoFamily::Wbfs, AlgoFamily::KCore];

    /// The scheduling-language-adjacent spelling (`sssp`, `wbfs`, `kcore`).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlgoFamily::Sssp => "sssp",
            AlgoFamily::Wbfs => "wbfs",
            AlgoFamily::KCore => "kcore",
        }
    }

    /// Parses [`AlgoFamily::as_str`] spellings.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spelling.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "sssp" => Ok(AlgoFamily::Sssp),
            "wbfs" => Ok(AlgoFamily::Wbfs),
            "kcore" | "k-core" => Ok(AlgoFamily::KCore),
            other => Err(format!("unknown algorithm family {other:?}")),
        }
    }

    /// Whether priority coarsening (Δ > 1) is legal for this family.
    /// k-core peels under strict priority order (paper §2); wBFS pins Δ to
    /// 1 by definition, so a coarsened plan would be lying about what runs.
    pub fn coarsening_allowed(&self) -> bool {
        matches!(self, AlgoFamily::Sssp)
    }

    /// Whether the family's UDF is a constant-sum priority update (the
    /// Figure 10 analysis) — the precondition for `lazy_constant_sum`.
    pub fn constant_sum(&self) -> bool {
        matches!(self, AlgoFamily::KCore)
    }
}

impl fmt::Display for AlgoFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a plan came from — reported to operators so a `ListGraphs` can
/// distinguish a seeded guess from a measured winner.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanOrigin {
    /// Seeded from [`GraphProfile`] heuristics when the graph loaded.
    Heuristic,
    /// Installed by the autotuner after measured trials on this graph.
    Tuned {
        /// Trials the winning search spent.
        trials: u32,
    },
    /// The client pinned an explicit schedule for one query (never cached).
    Pinned,
}

impl PlanOrigin {
    /// Short operator-facing spelling (`heur`, `tuned`, `pin`).
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanOrigin::Heuristic => "heur",
            PlanOrigin::Tuned { .. } => "tuned",
            PlanOrigin::Pinned => "pin",
        }
    }
}

impl fmt::Display for PlanOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOrigin::Tuned { trials } => write!(f, "tuned/{trials}"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// Shape statistics that drive heuristic plan seeding — the quantities the
/// paper's §6.2 guidance is phrased in.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphProfile {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Average out-degree (`edges / vertices`, 0 for the empty graph).
    pub avg_degree: f64,
    /// Largest edge weight (0 for an edgeless graph).
    pub max_weight: i64,
    /// Whether vertices carry coordinates (road networks do; it is the
    /// strongest single road-vs-social signal the formats preserve).
    pub has_coords: bool,
    /// Whether the graph is symmetric.
    pub symmetric: bool,
}

impl GraphProfile {
    /// Profiles a resident graph. O(1) — every input is a stored property.
    pub fn of(graph: &CsrGraph) -> GraphProfile {
        let vertices = graph.num_vertices();
        let edges = graph.num_edges();
        GraphProfile {
            vertices,
            edges,
            avg_degree: if vertices == 0 {
                0.0
            } else {
                edges as f64 / vertices as f64
            },
            max_weight: graph.max_weight() as i64,
            has_coords: graph.coords().is_some(),
            symmetric: graph.is_symmetric(),
        }
    }

    /// Whether the profile looks like a road network: coordinates, or the
    /// mesh-like combination of low degree and a wide weight range.
    pub fn road_like(&self) -> bool {
        self.has_coords || (self.avg_degree <= 8.0 && self.max_weight >= 1 << 10)
    }
}

/// A complete per-graph execution decision for one algorithm family.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPlan {
    /// The family the plan serves.
    pub family: AlgoFamily,
    /// The schedule queries under this plan execute with.
    pub schedule: Schedule,
    /// Where the plan came from.
    pub origin: PlanOrigin,
}

impl QueryPlan {
    /// Builds a plan, normalizing the schedule into the family's legal
    /// subspace where the driver would anyway (Δ is pinned to 1 for wBFS
    /// and k-core, so the plan reports what actually runs).
    pub fn new(family: AlgoFamily, schedule: Schedule, origin: PlanOrigin) -> QueryPlan {
        let mut schedule = schedule;
        if !family.coarsening_allowed() {
            schedule.delta = 1;
        }
        QueryPlan {
            family,
            schedule,
            origin,
        }
    }

    /// The paper-informed default plan for `family` on a graph shaped like
    /// `profile` (§6.2: road networks want large Δ, social networks small Δ
    /// scaled to the weight range; k-core wants the constant-sum histogram).
    pub fn heuristic(family: AlgoFamily, profile: &GraphProfile) -> QueryPlan {
        let schedule = match family {
            AlgoFamily::Sssp => {
                if profile.road_like() {
                    Schedule::lazy(1 << 12)
                } else {
                    // Social-network Δ in the 1–100 band, scaled to the
                    // weight range (unit weights collapse to wBFS-like Δ=1).
                    Schedule::lazy((profile.max_weight / 32).clamp(1, 100))
                }
            }
            AlgoFamily::Wbfs => Schedule::lazy(1),
            AlgoFamily::KCore => Schedule::lazy_constant_sum(),
        };
        QueryPlan::new(family, schedule, PlanOrigin::Heuristic)
    }

    /// Family-level legality: the subset of [`crate::engine::validate`]
    /// decidable without a concrete problem/UDF pair, mirroring the schedule
    /// support matrix. A plan that passes here passes the engine check for
    /// every query of its family.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        let s = &self.schedule;
        if s.delta < 1 {
            return Err(ScheduleError::InvalidDelta { delta: s.delta });
        }
        if s.delta > 1 && !self.family.coarsening_allowed() {
            return Err(ScheduleError::CoarseningNotAllowed { delta: s.delta });
        }
        if s.is_eager() && s.direction == Direction::DensePull {
            return Err(ScheduleError::DensePullRequiresLazy);
        }
        if s.priority_update == PriorityUpdateStrategy::EagerWithFusion && s.fusion_threshold == 0 {
            return Err(ScheduleError::InvalidFusionThreshold);
        }
        if s.priority_update == PriorityUpdateStrategy::LazyConstantSum
            && !self.family.constant_sum()
        {
            return Err(ScheduleError::ConstantSumRequired);
        }
        Ok(())
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}@{} ({})",
            self.family, self.schedule.priority_update, self.schedule.delta, self.origin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn family_spellings_roundtrip() {
        for family in AlgoFamily::ALL {
            assert_eq!(AlgoFamily::parse(family.as_str()), Ok(family));
        }
        assert_eq!(AlgoFamily::parse("k-core"), Ok(AlgoFamily::KCore));
        assert!(
            AlgoFamily::parse("ppsp").is_err(),
            "no plan family: point \
                 queries run on the strict-priority serial engine"
        );
    }

    #[test]
    fn profile_reads_shape_signals() {
        let roads = GraphGen::road_grid(8, 8).seed(1).build();
        let p = GraphProfile::of(&roads);
        assert!(p.has_coords && p.road_like() && p.symmetric);
        assert!((p.avg_degree - (p.edges as f64 / 64.0)).abs() < 1e-12);

        let social = GraphGen::rmat(7, 8).seed(2).weights_uniform(1, 100).build();
        let p = GraphProfile::of(&social);
        assert!(!p.has_coords && !p.road_like());
    }

    #[test]
    fn heuristics_follow_the_paper_bands() {
        let roads = GraphProfile::of(&GraphGen::road_grid(8, 8).seed(1).build());
        let plan = QueryPlan::heuristic(AlgoFamily::Sssp, &roads);
        assert!(
            plan.schedule.delta >= 1 << 12,
            "road Δ band is 2^13–2^17ish"
        );

        let social = GraphProfile::of(
            &GraphGen::rmat(7, 8)
                .seed(2)
                .weights_uniform(1, 1000)
                .build(),
        );
        let plan = QueryPlan::heuristic(AlgoFamily::Sssp, &social);
        assert!(
            (1..=100).contains(&plan.schedule.delta),
            "social Δ band is 1–100, got {}",
            plan.schedule.delta
        );

        let kcore = QueryPlan::heuristic(AlgoFamily::KCore, &social);
        assert_eq!(
            kcore.schedule.priority_update,
            PriorityUpdateStrategy::LazyConstantSum
        );
        assert_eq!(
            QueryPlan::heuristic(AlgoFamily::Wbfs, &roads)
                .schedule
                .delta,
            1
        );
    }

    #[test]
    fn heuristic_plans_always_validate() {
        // Degenerate profiles included: the seeding path must never hand
        // the engines an illegal plan.
        let profiles = [
            GraphProfile {
                vertices: 0,
                edges: 0,
                avg_degree: 0.0,
                max_weight: 0,
                has_coords: false,
                symmetric: false,
            },
            GraphProfile::of(&GraphGen::road_grid(6, 6).seed(3).build()),
            GraphProfile::of(&GraphGen::rmat(6, 4).seed(4).weights_uniform(1, 7).build()),
        ];
        for profile in &profiles {
            for family in AlgoFamily::ALL {
                let plan = QueryPlan::heuristic(family, profile);
                assert!(plan.validate().is_ok(), "{plan}");
            }
        }
    }

    #[test]
    fn validate_rejects_the_documented_illegal_corners() {
        let coarse_kcore = QueryPlan {
            family: AlgoFamily::KCore,
            schedule: Schedule::lazy(8),
            origin: PlanOrigin::Pinned,
        };
        assert!(matches!(
            coarse_kcore.validate(),
            Err(ScheduleError::CoarseningNotAllowed { delta: 8 })
        ));
        let cs_sssp = QueryPlan {
            family: AlgoFamily::Sssp,
            schedule: Schedule::lazy_constant_sum(),
            origin: PlanOrigin::Pinned,
        };
        assert!(matches!(
            cs_sssp.validate(),
            Err(ScheduleError::ConstantSumRequired)
        ));
        let pull_eager = QueryPlan {
            family: AlgoFamily::Sssp,
            schedule: Schedule::eager(4).config_apply_direction(Direction::DensePull),
            origin: PlanOrigin::Pinned,
        };
        assert!(matches!(
            pull_eager.validate(),
            Err(ScheduleError::DensePullRequiresLazy)
        ));
        let zero_fusion = QueryPlan {
            family: AlgoFamily::Sssp,
            schedule: Schedule {
                fusion_threshold: 0,
                ..Schedule::eager_with_fusion(2)
            },
            origin: PlanOrigin::Pinned,
        };
        assert!(matches!(
            zero_fusion.validate(),
            Err(ScheduleError::InvalidFusionThreshold)
        ));
        let bad_delta = QueryPlan {
            family: AlgoFamily::Sssp,
            schedule: Schedule::lazy(0),
            origin: PlanOrigin::Pinned,
        };
        assert!(matches!(
            bad_delta.validate(),
            Err(ScheduleError::InvalidDelta { delta: 0 })
        ));
    }

    #[test]
    fn new_normalizes_delta_into_the_family_subspace() {
        let plan = QueryPlan::new(
            AlgoFamily::Wbfs,
            Schedule::lazy(4096),
            PlanOrigin::Heuristic,
        );
        assert_eq!(plan.schedule.delta, 1);
        let plan = QueryPlan::new(
            AlgoFamily::KCore,
            Schedule::lazy_constant_sum(),
            PlanOrigin::Tuned { trials: 12 },
        );
        assert!(plan.validate().is_ok());
        assert_eq!(plan.origin.to_string(), "tuned/12");
        // Sssp keeps its Δ.
        let plan = QueryPlan::new(AlgoFamily::Sssp, Schedule::lazy(64), PlanOrigin::Heuristic);
        assert_eq!(plan.schedule.delta, 64);
    }
}
