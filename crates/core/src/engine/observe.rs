//! Round-boundary profiling hooks for the execution engines.
//!
//! A [`RoundObserver`] sees one [`RoundInfo`] per synchronized round —
//! which bucket ran, at what priority, how wide the frontier was, and how
//! many edge relaxations the round performed. This is the shape the
//! GraphIt paper's evaluation tables are built from (rounds, relaxations,
//! bucket counts per schedule), surfaced live so a serving layer can check
//! whether a tuned plan behaves in production like it did under the tuner.
//!
//! The trait lives in the core crate so the engines stay free of any
//! telemetry dependency; the server implements it on top of
//! `priograph-telemetry` histograms. Passing `None` to
//! [`run_ordered_observed`](crate::engine::run_ordered_observed) keeps the
//! hot loops at their unobserved cost: the only added work is one
//! `Option::is_some` test per round (lazy) or per worker-loop iteration
//! (eager) — the existing bench gate holds either way.
//!
//! ## What counts as a round
//!
//! Observers see *synchronized* rounds: one callback per frontier the
//! engine processed under a barrier (eager) or per bulk-synchronous
//! dequeue (lazy). Eager bucket fusion's barrier-free drain iterations are
//! not separate callbacks — their relaxations are attributed to the
//! enclosing synchronized round, mirroring how `ExecStats::rounds`
//! already counts.

/// One synchronized engine round, reported at its boundary.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundInfo {
    /// 1-based round number within this run.
    pub round: u64,
    /// Bucket index the round processed.
    pub bucket: i64,
    /// Priority value the bucket maps to (`delta`-coarsened).
    pub priority: i64,
    /// Number of frontier entries processed (pre-staleness-filter).
    pub frontier: usize,
    /// Edge relaxations the round performed (for eager, including any
    /// fused drain work attributed to this round).
    pub relaxations: u64,
}

/// A sink for per-round engine profile events.
///
/// Implementations are called from inside the engine — for the eager
/// engine, from the pool's leader thread between barriers — so they must
/// be cheap and must not block: the intended implementation is a handful
/// of relaxed atomic increments (see the server's round telemetry).
pub trait RoundObserver: Sync {
    /// Called once per synchronized round, after the round's work is
    /// complete and its counts are final.
    fn on_round(&self, info: &RoundInfo);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingObserver(std::sync::atomic::AtomicU64);

    impl RoundObserver for CountingObserver {
        fn on_round(&self, info: &RoundInfo) {
            self.0
                .fetch_add(info.relaxations, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn trait_objects_are_usable_behind_an_option() {
        let obs = CountingObserver(std::sync::atomic::AtomicU64::new(0));
        let dyn_obs: Option<&dyn RoundObserver> = Some(&obs);
        if let Some(o) = dyn_obs {
            o.on_round(&RoundInfo {
                round: 1,
                bucket: 0,
                priority: 0,
                frontier: 3,
                relaxations: 7,
            });
        }
        assert_eq!(obs.0.load(std::sync::atomic::Ordering::Relaxed), 7);
    }
}
