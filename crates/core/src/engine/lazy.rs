//! The lazy bucket-update engine (paper §3.1, Figure 5, Figure 9(a)/(b)).
//!
//! Bulk-synchronous rounds: dequeue the minimum bucket, traverse its
//! out-edges applying the UDF (updates are buffered as a deduplicated vertex
//! list), then re-bucket every updated vertex in one `bulkUpdateBuckets`
//! pass. Three traversal variants are generated from the schedule:
//!
//! * **SparsePush** — parallel over the frontier, atomic updates, output
//!   recorded with CAS dedup (Figure 9(a));
//! * **DensePull** — parallel over all vertices, scanning in-edges from
//!   frontier members, no atomics (Figure 9(b));
//! * **ConstantSum** — raw neighbor occurrences are buffered and reduced
//!   with a histogram, then a transformed `(vertex, count)` UDF applies each
//!   vertex's total once (Figure 10).
//!
//! # Zero-allocation rounds
//!
//! All per-round state lives in `RoundBuffers` (private), allocated once per run and
//! cleared (never dropped) between rounds: the frontier is refilled in place
//! by [`LazyBucketQueue::next_bucket_into`], traversal output is recorded in
//! per-worker update logs merged by scan compaction, and the DensePull
//! membership bitmap is wiped by iterating the old frontier rather than
//! reallocated. Steady-state rounds take no lock and perform no heap
//! allocation anywhere on the frontier pipeline.

use crate::engine::ctx::{DenseCtx, RoundStamps, SparseCtx};
use crate::engine::observe::{RoundInfo, RoundObserver};
use crate::engine::StopFn;
use crate::schedule::{Direction, Parallelization, PriorityUpdateStrategy, Schedule};
use crate::stats::ExecStats;
use crate::udf::OrderedUdf;
use priograph_buckets::histogram::Histogram;
use priograph_buckets::{LazyBucketQueue, PriorityMap};
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::scan::compact_into;
use priograph_parallel::shared::WorkerLocal;
use priograph_parallel::{ChunkCursor, Pool};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Rounds with fewer edge relaxations than this run inline on the calling
/// thread: dispatching a parallel region (waking workers, joining them)
/// costs far more than relaxing a few thousand edges serially. Road-style
/// graphs hit this constantly — hundreds of rounds whose frontiers hold a
/// few hundred vertices each — and per-round dispatch is exactly the
/// synchronization constant factor the paper's design minimizes.
const SERIAL_ROUND_CUTOFF: u64 = 4096;

/// Reusable per-round buffers of the lazy engine (see module docs).
struct RoundBuffers {
    /// The current bucket's ready set, refilled in place each round.
    frontier: Vec<VertexId>,
    /// Per-worker traversal output logs (SparsePush winners, ConstantSum
    /// raw occurrences).
    log: WorkerLocal<Vec<VertexId>>,
    /// Merged round output handed to `bulk_update`.
    updated: Vec<VertexId>,
    /// DensePull frontier-membership bitmap (lazily sized, wiped per round).
    dense: Vec<bool>,
    /// ConstantSum scratch: raw occurrences and the histogram's per-worker
    /// claim buffers.
    raw_items: Vec<VertexId>,
    hist_locals: WorkerLocal<Vec<VertexId>>,
}

impl RoundBuffers {
    fn new(pool: &Pool) -> Self {
        RoundBuffers {
            frontier: Vec::new(),
            log: WorkerLocal::new(pool.num_threads()),
            updated: Vec::new(),
            dense: Vec::new(),
            raw_items: Vec::new(),
            hist_locals: WorkerLocal::new(pool.num_threads()),
        }
    }
}

/// Runs the bulk-synchronous lazy engine to completion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_lazy<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: Arc<[AtomicI64]>,
    map: PriorityMap,
    schedule: &Schedule,
    seeds: Vec<VertexId>,
    udf: &U,
    stop: Option<StopFn<'_>>,
    observer: Option<&dyn RoundObserver>,
) -> ExecStats {
    let started = Instant::now();
    let n = graph.num_vertices();
    let mut stats = ExecStats::default();
    let mut queue = LazyBucketQueue::new(Arc::clone(&priorities), map, schedule.num_open_buckets);
    queue.insert_initial(seeds);

    let stamps = RoundStamps::new(n);
    let mut buffers = RoundBuffers::new(pool);
    let constant_sum = if schedule.priority_update == PriorityUpdateStrategy::LazyConstantSum {
        udf.constant_sum()
    } else {
        None
    };
    let hist = constant_sum.map(|_| Histogram::new(n));

    let grain = schedule.grain();
    let mut round: u64 = 0;
    let mut last_bucket = i64::MIN;

    while let Some(bucket) = queue.next_bucket_into(pool, &mut buffers.frontier) {
        let relax_before = stats.relaxations;
        let cur_priority = map.priority_of_bucket(bucket);
        if let Some(stop) = stop {
            let view = crate::engine::StopView::new(&priorities);
            if stop(cur_priority, &view) {
                break;
            }
        }
        round += 1;
        stats.rounds += 1;
        if bucket != last_bucket {
            stats.buckets += 1;
            last_bucket = bucket;
        }

        if let Some(c) = constant_sum {
            let work = graph.out_degree_sum(&buffers.frontier);
            stats.relaxations += work;
            round_constant_sum(
                pool,
                graph,
                &priorities,
                cur_priority,
                c,
                &mut buffers,
                hist.as_ref().expect("histogram allocated"),
                grain,
                work,
            );
        } else {
            match schedule.direction {
                Direction::SparsePush => {
                    let work = graph.out_degree_sum(&buffers.frontier);
                    stats.relaxations += work;
                    round_sparse_push(
                        pool,
                        graph,
                        &priorities,
                        cur_priority,
                        &mut buffers,
                        &stamps,
                        round,
                        schedule,
                        udf,
                        work,
                    );
                }
                Direction::DensePull => {
                    stats.relaxations += graph.num_edges() as u64;
                    round_dense_pull(
                        pool,
                        graph,
                        &priorities,
                        cur_priority,
                        &mut buffers,
                        grain,
                        udf,
                    );
                }
            }
        }

        // Round boundary: counts are final for this frontier. Costs one
        // `is_some` test when unobserved.
        if let Some(obs) = observer {
            obs.on_round(&RoundInfo {
                round,
                bucket,
                priority: cur_priority,
                frontier: buffers.frontier.len(),
                relaxations: stats.relaxations - relax_before,
            });
        }

        queue.bulk_update(pool, &buffers.updated);
    }

    stats.bucket_inserts = queue.total_inserts();
    stats.elapsed = started.elapsed();
    stats
}

/// One SparsePush round: Figure 9(a) lines 13–27, with the paper's
/// `syncAppend` realized as per-worker logs plus scan compaction — winners
/// are recorded with plain pushes (the stamp CAS already deduplicates
/// globally) and merged into `buffers.updated` without locks.
#[allow(clippy::too_many_arguments)]
fn round_sparse_push<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    cur_priority: i64,
    buffers: &mut RoundBuffers,
    stamps: &RoundStamps,
    round: u64,
    schedule: &Schedule,
    udf: &U,
    work: u64,
) {
    let frontier = &buffers.frontier;
    let traverse = |ctx: &SparseCtx<'_>, i: usize| {
        let src = frontier[i];
        for e in graph.out_edges(src) {
            udf.apply(src, e.dst, e.weight, ctx);
        }
    };
    let grain = match schedule.parallelization {
        Parallelization::DynamicVertex { grain } => grain.max(1),
        Parallelization::StaticVertex => 1,
    };
    // Small rounds run inline: recording straight into the output beats
    // waking the pool for a few thousand edge relaxations.
    if pool.num_threads() == 1
        || priograph_parallel::in_worker()
        || work < SERIAL_ROUND_CUTOFF
        || frontier.len() <= grain
    {
        let out = &mut buffers.updated;
        out.clear();
        let local = RefCell::new(std::mem::take(out));
        let ctx = SparseCtx {
            priorities,
            cur_priority,
            out: &local,
            stamps,
            round,
        };
        for i in 0..frontier.len() {
            traverse(&ctx, i);
        }
        *out = local.into_inner();
        return;
    }
    buffers.log.ensure(pool.num_threads());
    let log = &buffers.log;
    let cursor = ChunkCursor::new(frontier.len(), grain);
    let run_worker = |w: &priograph_parallel::Worker<'_>, buf: &mut Vec<VertexId>| {
        let local = RefCell::new(std::mem::take(buf));
        let ctx = SparseCtx {
            priorities,
            cur_priority,
            out: &local,
            stamps,
            round,
        };
        match schedule.parallelization {
            Parallelization::DynamicVertex { .. } => {
                while let Some(chunk) = cursor.next_chunk() {
                    for i in chunk {
                        traverse(&ctx, i);
                    }
                }
            }
            Parallelization::StaticVertex => {
                for i in w.static_range(frontier.len()) {
                    traverse(&ctx, i);
                }
            }
        }
        *buf = local.into_inner();
    };
    pool.broadcast(|w| log.with_mut(w.tid(), |buf| run_worker(&w, buf)));
    compact_into(pool, &mut buffers.log, &mut buffers.updated);
}

/// One DensePull round: Figure 9(b) lines 12–24. The membership bitmap is
/// engine-owned — wiped by iterating the frontier (O(frontier), not O(n))
/// instead of reallocated.
fn round_dense_pull<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    cur_priority: i64,
    buffers: &mut RoundBuffers,
    grain: usize,
    udf: &U,
) {
    let n = graph.num_vertices();
    buffers.dense.resize(n, false);
    let frontier = &buffers.frontier;
    for &v in frontier {
        buffers.dense[v as usize] = true;
    }
    buffers.log.ensure(pool.num_threads());
    {
        let dense = &buffers.dense;
        let log = &buffers.log;
        let cursor = ChunkCursor::new(n, grain.max(1));
        pool.broadcast(|w| {
            log.with_mut(w.tid(), |buf| {
                while let Some(chunk) = cursor.next_chunk() {
                    for d in chunk {
                        let ctx = DenseCtx {
                            priorities,
                            cur_priority,
                            changed: Cell::new(false),
                        };
                        for e in graph.in_edges(d as VertexId) {
                            if dense[e.dst as usize] {
                                udf.apply(e.dst, d as VertexId, e.weight, &ctx);
                            }
                        }
                        if ctx.changed.get() {
                            buf.push(d as VertexId);
                        }
                    }
                }
            });
        });
    }
    compact_into(pool, &mut buffers.log, &mut buffers.updated);
    for &v in &buffers.frontier {
        buffers.dense[v as usize] = false;
    }
}

/// One constant-sum round: buffer raw occurrences, histogram-reduce, then
/// apply the transformed `(vertex, count)` function (Figure 10 bottom).
#[allow(clippy::too_many_arguments)]
fn round_constant_sum(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    cur_priority: i64,
    c: i64,
    buffers: &mut RoundBuffers,
    hist: &Histogram,
    grain: usize,
    work: u64,
) {
    // Phase 1: collect raw neighbor occurrences of not-yet-finalized
    // vertices (no atomics on priorities, no per-update dedup) into the
    // per-worker logs; small rounds fill the merged buffer inline.
    if pool.num_threads() == 1 || priograph_parallel::in_worker() || work < SERIAL_ROUND_CUTOFF {
        buffers.raw_items.clear();
        for &src in &buffers.frontier {
            for e in graph.out_edges(src) {
                if priorities[e.dst as usize].load(Ordering::Relaxed) > cur_priority {
                    buffers.raw_items.push(e.dst);
                }
            }
        }
    } else {
        buffers.log.ensure(pool.num_threads());
        {
            let frontier = &buffers.frontier;
            let log = &buffers.log;
            let cursor = ChunkCursor::new(frontier.len(), grain.max(1));
            pool.broadcast(|w| {
                log.with_mut(w.tid(), |buf| {
                    while let Some(chunk) = cursor.next_chunk() {
                        for i in chunk {
                            let src = frontier[i];
                            for e in graph.out_edges(src) {
                                if priorities[e.dst as usize].load(Ordering::Relaxed) > cur_priority
                                {
                                    buf.push(e.dst);
                                }
                            }
                        }
                    }
                });
            });
        }
        compact_into(pool, &mut buffers.log, &mut buffers.raw_items);
    }

    // Phase 2: histogram reduction — one bucket update per distinct vertex.
    hist.accumulate_into(
        pool,
        &buffers.raw_items,
        &mut buffers.hist_locals,
        &mut buffers.updated,
    );
    let distinct = &buffers.updated;

    // Phase 3: transformed UDF (Figure 10 bottom): one non-atomic write per
    // vertex, clamped at the current core value.
    pool.parallel_for(0..distinct.len(), grain, |i| {
        let v = distinct[i] as usize;
        let p = priorities[v].load(Ordering::Relaxed);
        if p > cur_priority {
            let count = i64::from(hist.count(distinct[i]));
            let new_priority = (p + c * count).max(cur_priority);
            priorities[v].store(new_priority, Ordering::Relaxed);
        }
    });
    hist.clear(pool, distinct);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::OrderedProblem;
    use crate::udf::{DecrementToFloor, MinPlusWeight};
    use priograph_buckets::NULL_PRIORITY;
    use priograph_graph::GraphBuilder;

    fn run(
        graph: &CsrGraph,
        schedule: &Schedule,
        seeds: &[(VertexId, i64)],
    ) -> crate::problem::OrderedOutput {
        let pool = Pool::new(2);
        let mut p = OrderedProblem::lower_first(graph)
            .allow_coarsening()
            .init_constant(NULL_PRIORITY);
        for &(v, pri) in seeds {
            p = p.seed(v, pri);
        }
        crate::engine::run_ordered_on(&pool, &p, schedule, &MinPlusWeight, None).unwrap()
    }

    fn diamond() -> CsrGraph {
        GraphBuilder::new(5)
            .edge(0, 1, 5)
            .edge(0, 2, 1)
            .edge(2, 1, 1)
            .edge(1, 3, 2)
            .edge(2, 3, 10)
            .build()
    }

    #[test]
    fn sparse_push_finds_shortest_paths() {
        let g = diamond();
        let out = run(&g, &Schedule::lazy(1), &[(0, 0)]);
        assert_eq!(out.priorities[..4], [0, 2, 1, 4]);
        assert_eq!(out.priorities[4], NULL_PRIORITY);
    }

    #[test]
    fn dense_pull_matches_sparse_push() {
        let g = diamond();
        let sparse = run(&g, &Schedule::lazy(1), &[(0, 0)]);
        let dense = run(
            &g,
            &Schedule::lazy(1).config_apply_direction(Direction::DensePull),
            &[(0, 0)],
        );
        assert_eq!(sparse.priorities, dense.priorities);
    }

    #[test]
    fn coarsening_preserves_distances() {
        let g = diamond();
        for delta in [1, 2, 4, 64] {
            let out = run(&g, &Schedule::lazy(delta), &[(0, 0)]);
            assert_eq!(out.priorities[..4], [0, 2, 1, 4], "delta={delta}");
        }
    }

    #[test]
    fn stats_track_rounds_and_buckets() {
        let g = diamond();
        let out = run(&g, &Schedule::lazy(1), &[(0, 0)]);
        assert!(out.stats.rounds >= out.stats.buckets);
        assert!(out.stats.buckets >= 3);
        assert!(out.stats.relaxations >= g.num_edges() as u64 - 1);
        assert!(out.stats.bucket_inserts > 0);
        assert_eq!(out.stats.fused_rounds, 0, "lazy never fuses");
    }

    #[test]
    fn stop_condition_halts_early() {
        // Path 0 -> 1 -> 2 -> 3, stop once the current priority reaches 2.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(1, 2, 1)
            .edge(2, 3, 1)
            .build();
        let pool = Pool::new(1);
        let p = OrderedProblem::lower_first(&g)
            .init_constant(NULL_PRIORITY)
            .seed(0, 0);
        let stop = |pri: i64, _: &crate::engine::StopView<'_>| pri >= 2;
        let out = crate::engine::run_ordered_on(
            &pool,
            &p,
            &Schedule::lazy(1),
            &MinPlusWeight,
            Some(&stop),
        )
        .unwrap();
        // Buckets 0 and 1 ran; bucket 2 was cut off by the stop condition,
        // so vertex 3 was never discovered.
        assert_eq!(out.priorities[1], 1);
        assert_eq!(out.priorities[2], 2);
        assert_eq!(out.priorities[3], NULL_PRIORITY);
    }

    #[test]
    fn constant_sum_kcore_on_triangle_with_tail() {
        // Triangle 0-1-2 plus pendant 3-0: coreness 2,2,2,1.
        let g = GraphBuilder::new(4)
            .edges(vec![
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (2, 1, 1),
                (0, 2, 1),
                (2, 0, 1),
                (0, 3, 1),
                (3, 0, 1),
            ])
            .build();
        let pool = Pool::new(2);
        let degrees: Vec<i64> = g.vertices().map(|v| g.out_degree(v) as i64).collect();
        let p = OrderedProblem::lower_first(&g)
            .init_per_vertex(degrees)
            .seed_all_finite();
        let out = crate::engine::run_ordered_on(
            &pool,
            &p,
            &Schedule::lazy_constant_sum(),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        assert_eq!(out.priorities, vec![2, 2, 2, 1]);
    }

    #[test]
    fn constant_sum_matches_general_lazy_on_kcore() {
        let g = priograph_graph::gen::GraphGen::rmat(7, 6)
            .seed(5)
            .build()
            .symmetrize();
        let pool = Pool::new(2);
        let degrees: Vec<i64> = g.vertices().map(|v| g.out_degree(v) as i64).collect();
        let problem = OrderedProblem::lower_first(&g)
            .init_per_vertex(degrees)
            .seed_all_finite();
        let a = crate::engine::run_ordered_on(
            &pool,
            &problem,
            &Schedule::lazy_constant_sum(),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        let b = crate::engine::run_ordered_on(
            &pool,
            &problem,
            &Schedule::lazy(1),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        assert_eq!(a.priorities, b.priorities);
    }
}
