//! The lazy bucket-update engine (paper §3.1, Figure 5, Figure 9(a)/(b)).
//!
//! Bulk-synchronous rounds: dequeue the minimum bucket, traverse its
//! out-edges applying the UDF (updates are buffered as a deduplicated vertex
//! list), then re-bucket every updated vertex in one `bulkUpdateBuckets`
//! pass. Three traversal variants are generated from the schedule:
//!
//! * **SparsePush** — parallel over the frontier, atomic updates, output
//!   recorded with CAS dedup (Figure 9(a));
//! * **DensePull** — parallel over all vertices, scanning in-edges from
//!   frontier members, no atomics (Figure 9(b));
//! * **ConstantSum** — raw neighbor occurrences are buffered and reduced
//!   with a histogram, then a transformed `(vertex, count)` UDF applies each
//!   vertex's total once (Figure 10).

use crate::engine::ctx::{DenseCtx, RoundStamps, SparseCtx};
use crate::engine::StopFn;
use crate::schedule::{Direction, Parallelization, PriorityUpdateStrategy, Schedule};
use crate::stats::ExecStats;
use crate::udf::OrderedUdf;
use priograph_buckets::histogram::Histogram;
use priograph_buckets::{LazyBucketQueue, PriorityMap, SharedFrontier};
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::Pool;
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Runs the bulk-synchronous lazy engine to completion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_lazy<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: Arc<[AtomicI64]>,
    map: PriorityMap,
    schedule: &Schedule,
    seeds: Vec<VertexId>,
    udf: &U,
    stop: Option<StopFn<'_>>,
) -> ExecStats {
    let started = Instant::now();
    let n = graph.num_vertices();
    let mut stats = ExecStats::default();
    let mut queue = LazyBucketQueue::new(Arc::clone(&priorities), map, schedule.num_open_buckets);
    queue.insert_initial(seeds);

    let stamps = RoundStamps::new(n);
    let out = SharedFrontier::new(n + 1);
    let constant_sum = if schedule.priority_update == PriorityUpdateStrategy::LazyConstantSum {
        udf.constant_sum()
    } else {
        None
    };
    let (hist, raw) = if constant_sum.is_some() {
        (
            Some(Histogram::new(n)),
            Some(SharedFrontier::new(graph.num_edges() + 1)),
        )
    } else {
        (None, None)
    };

    let grain = schedule.grain();
    let mut round: u64 = 0;
    let mut last_bucket = i64::MIN;

    while let Some((bucket, frontier)) = queue.next_bucket(pool) {
        let cur_priority = map.priority_of_bucket(bucket);
        if let Some(stop) = stop {
            let view = crate::engine::StopView::new(&priorities);
            if stop(cur_priority, &view) {
                break;
            }
        }
        round += 1;
        stats.rounds += 1;
        if bucket != last_bucket {
            stats.buckets += 1;
            last_bucket = bucket;
        }

        let updated: Vec<VertexId> = if let Some(c) = constant_sum {
            stats.relaxations += graph.out_degree_sum(&frontier);
            round_constant_sum(
                pool,
                graph,
                &priorities,
                cur_priority,
                c,
                &frontier,
                raw.as_ref().expect("raw buffer allocated"),
                hist.as_ref().expect("histogram allocated"),
                grain,
            )
        } else {
            match schedule.direction {
                Direction::SparsePush => {
                    stats.relaxations += graph.out_degree_sum(&frontier);
                    round_sparse_push(
                        pool,
                        graph,
                        &priorities,
                        cur_priority,
                        &frontier,
                        &out,
                        &stamps,
                        round,
                        schedule,
                        udf,
                    )
                }
                Direction::DensePull => {
                    stats.relaxations += graph.num_edges() as u64;
                    round_dense_pull(
                        pool,
                        graph,
                        &priorities,
                        cur_priority,
                        &frontier,
                        &out,
                        grain,
                        udf,
                    )
                }
            }
        };

        queue.bulk_update(pool, &updated);
    }

    stats.bucket_inserts = queue.total_inserts();
    stats.elapsed = started.elapsed();
    stats
}

/// One SparsePush round: Figure 9(a) lines 13–27.
#[allow(clippy::too_many_arguments)]
fn round_sparse_push<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    cur_priority: i64,
    frontier: &[VertexId],
    out: &SharedFrontier,
    stamps: &RoundStamps,
    round: u64,
    schedule: &Schedule,
    udf: &U,
) -> Vec<VertexId> {
    out.reset();
    let ctx = SparseCtx {
        priorities,
        cur_priority,
        out,
        stamps,
        round,
    };
    let body = |i: usize| {
        let src = frontier[i];
        for e in graph.out_edges(src) {
            udf.apply(src, e.dst, e.weight, &ctx);
        }
    };
    match schedule.parallelization {
        Parallelization::DynamicVertex { grain } => {
            pool.parallel_for(0..frontier.len(), grain, body)
        }
        Parallelization::StaticVertex => pool.parallel_for_static(0..frontier.len(), body),
    }
    out.to_vec()
}

/// One DensePull round: Figure 9(b) lines 12–24.
#[allow(clippy::too_many_arguments)]
fn round_dense_pull<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    cur_priority: i64,
    frontier: &[VertexId],
    out: &SharedFrontier,
    grain: usize,
    udf: &U,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut dense = vec![false; n];
    for &v in frontier {
        dense[v as usize] = true;
    }
    out.reset();
    pool.parallel_for(0..n, grain, |d| {
        let ctx = DenseCtx {
            priorities,
            cur_priority,
            changed: Cell::new(false),
        };
        for e in graph.in_edges(d as VertexId) {
            if dense[e.dst as usize] {
                udf.apply(e.dst, d as VertexId, e.weight, &ctx);
            }
        }
        if ctx.changed.get() {
            out.push(d as VertexId);
        }
    });
    out.to_vec()
}

/// One constant-sum round: buffer raw occurrences, histogram-reduce, then
/// apply the transformed `(vertex, count)` function (Figure 10 bottom).
#[allow(clippy::too_many_arguments)]
fn round_constant_sum(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    cur_priority: i64,
    c: i64,
    frontier: &[VertexId],
    raw: &SharedFrontier,
    hist: &Histogram,
    grain: usize,
) -> Vec<VertexId> {
    raw.reset();
    // Phase 1: collect raw neighbor occurrences of not-yet-finalized
    // vertices (no atomics on priorities, no per-update dedup).
    let cursor = priograph_parallel::ChunkCursor::new(frontier.len(), grain.max(1));
    pool.broadcast(|_w| {
        let mut local: Vec<VertexId> = Vec::new();
        while let Some(chunk) = cursor.next_chunk() {
            for i in chunk {
                let src = frontier[i];
                for e in graph.out_edges(src) {
                    if priorities[e.dst as usize].load(Ordering::Relaxed) > cur_priority {
                        local.push(e.dst);
                    }
                }
            }
        }
        raw.append(&local);
    });
    let raw_items = raw.to_vec();

    // Phase 2: histogram reduction — one bucket update per distinct vertex.
    let distinct = hist.accumulate(pool, &raw_items);

    // Phase 3: transformed UDF (Figure 10 bottom): one non-atomic write per
    // vertex, clamped at the current core value.
    pool.parallel_for(0..distinct.len(), grain, |i| {
        let v = distinct[i] as usize;
        let p = priorities[v].load(Ordering::Relaxed);
        if p > cur_priority {
            let count = i64::from(hist.count(distinct[i]));
            let new_priority = (p + c * count).max(cur_priority);
            priorities[v].store(new_priority, Ordering::Relaxed);
        }
    });
    hist.clear(pool, &distinct);
    distinct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::OrderedProblem;
    use crate::udf::{DecrementToFloor, MinPlusWeight};
    use priograph_buckets::NULL_PRIORITY;
    use priograph_graph::GraphBuilder;

    fn run(
        graph: &CsrGraph,
        schedule: &Schedule,
        seeds: &[(VertexId, i64)],
    ) -> crate::problem::OrderedOutput {
        let pool = Pool::new(2);
        let mut p = OrderedProblem::lower_first(graph)
            .allow_coarsening()
            .init_constant(NULL_PRIORITY);
        for &(v, pri) in seeds {
            p = p.seed(v, pri);
        }
        crate::engine::run_ordered_on(&pool, &p, schedule, &MinPlusWeight, None).unwrap()
    }

    fn diamond() -> CsrGraph {
        GraphBuilder::new(5)
            .edge(0, 1, 5)
            .edge(0, 2, 1)
            .edge(2, 1, 1)
            .edge(1, 3, 2)
            .edge(2, 3, 10)
            .build()
    }

    #[test]
    fn sparse_push_finds_shortest_paths() {
        let g = diamond();
        let out = run(&g, &Schedule::lazy(1), &[(0, 0)]);
        assert_eq!(out.priorities[..4], [0, 2, 1, 4]);
        assert_eq!(out.priorities[4], NULL_PRIORITY);
    }

    #[test]
    fn dense_pull_matches_sparse_push() {
        let g = diamond();
        let sparse = run(&g, &Schedule::lazy(1), &[(0, 0)]);
        let dense = run(
            &g,
            &Schedule::lazy(1).config_apply_direction(Direction::DensePull),
            &[(0, 0)],
        );
        assert_eq!(sparse.priorities, dense.priorities);
    }

    #[test]
    fn coarsening_preserves_distances() {
        let g = diamond();
        for delta in [1, 2, 4, 64] {
            let out = run(&g, &Schedule::lazy(delta), &[(0, 0)]);
            assert_eq!(out.priorities[..4], [0, 2, 1, 4], "delta={delta}");
        }
    }

    #[test]
    fn stats_track_rounds_and_buckets() {
        let g = diamond();
        let out = run(&g, &Schedule::lazy(1), &[(0, 0)]);
        assert!(out.stats.rounds >= out.stats.buckets);
        assert!(out.stats.buckets >= 3);
        assert!(out.stats.relaxations >= g.num_edges() as u64 - 1);
        assert!(out.stats.bucket_inserts > 0);
        assert_eq!(out.stats.fused_rounds, 0, "lazy never fuses");
    }

    #[test]
    fn stop_condition_halts_early() {
        // Path 0 -> 1 -> 2 -> 3, stop once the current priority reaches 2.
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(1, 2, 1)
            .edge(2, 3, 1)
            .build();
        let pool = Pool::new(1);
        let p = OrderedProblem::lower_first(&g)
            .init_constant(NULL_PRIORITY)
            .seed(0, 0);
        let stop = |pri: i64, _: &crate::engine::StopView<'_>| pri >= 2;
        let out = crate::engine::run_ordered_on(
            &pool,
            &p,
            &Schedule::lazy(1),
            &MinPlusWeight,
            Some(&stop),
        )
        .unwrap();
        // Buckets 0 and 1 ran; bucket 2 was cut off by the stop condition,
        // so vertex 3 was never discovered.
        assert_eq!(out.priorities[1], 1);
        assert_eq!(out.priorities[2], 2);
        assert_eq!(out.priorities[3], NULL_PRIORITY);
    }

    #[test]
    fn constant_sum_kcore_on_triangle_with_tail() {
        // Triangle 0-1-2 plus pendant 3-0: coreness 2,2,2,1.
        let g = GraphBuilder::new(4)
            .edges(vec![
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (2, 1, 1),
                (0, 2, 1),
                (2, 0, 1),
                (0, 3, 1),
                (3, 0, 1),
            ])
            .build();
        let pool = Pool::new(2);
        let degrees: Vec<i64> = g.vertices().map(|v| g.out_degree(v) as i64).collect();
        let p = OrderedProblem::lower_first(&g)
            .init_per_vertex(degrees)
            .seed_all_finite();
        let out = crate::engine::run_ordered_on(
            &pool,
            &p,
            &Schedule::lazy_constant_sum(),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        assert_eq!(out.priorities, vec![2, 2, 2, 1]);
    }

    #[test]
    fn constant_sum_matches_general_lazy_on_kcore() {
        let g = priograph_graph::gen::GraphGen::rmat(7, 6)
            .seed(5)
            .build()
            .symmetrize();
        let pool = Pool::new(2);
        let degrees: Vec<i64> = g.vertices().map(|v| g.out_degree(v) as i64).collect();
        let problem = OrderedProblem::lower_first(&g)
            .init_per_vertex(degrees)
            .seed_all_finite();
        let a = crate::engine::run_ordered_on(
            &pool,
            &problem,
            &Schedule::lazy_constant_sum(),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        let b = crate::engine::run_ordered_on(
            &pool,
            &problem,
            &Schedule::lazy(1),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        assert_eq!(a.priorities, b.priorities);
    }
}
