//! The eager bucket-update engine with bucket fusion
//! (paper §3.2–3.3, Figures 6, 7, 9(c)).
//!
//! One long-lived parallel region hosts the entire while loop. Every thread
//! owns a `LocalBins` created inside the region; priority updates push the
//! vertex straight into the updating thread's bin for its new bucket. Per
//! round:
//!
//! 1. threads claim dynamic chunks of the shared frontier and relax edges;
//! 2. **bucket fusion** (if enabled): while a thread's *current* local bin
//!    is non-empty and below the threshold, it drains and processes it
//!    immediately — no barrier, no copy-out (Figure 7 lines 14–21);
//! 3. threads propose the minimum non-empty bin; the leader picks the global
//!    minimum, everyone copies their bin for that bucket into the shared
//!    frontier, and the next round begins.
//!
//! Rounds cost two barrier groups each; fusion's entire effect is replacing
//! rounds of type (1)+(3) with barrier-free iterations of (2) — Table 6
//! measures the round reduction (48,407 → 1,069 on RoadUSA).

use crate::engine::ctx::EagerCtx;
use crate::engine::observe::{RoundInfo, RoundObserver};
use crate::engine::StopFn;
use crate::schedule::{PriorityUpdateStrategy, Schedule};
use crate::stats::ExecStats;
use crate::udf::OrderedUdf;
use priograph_buckets::{LocalBins, PriorityMap, SharedFrontier};
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::ClaimFlags;
use priograph_parallel::{ChunkCursor, Pool};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Sentinel for "no next bucket proposed".
const NO_BUCKET: usize = usize::MAX;

/// Runs the eager engine (with or without fusion) to completion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_eager<U: OrderedUdf>(
    pool: &Pool,
    graph: &CsrGraph,
    priorities: &[AtomicI64],
    map: PriorityMap,
    schedule: &Schedule,
    seeds: &[VertexId],
    udf: &U,
    stop: Option<StopFn<'_>>,
    observer: Option<&dyn RoundObserver>,
) -> ExecStats {
    let started = Instant::now();
    let fusion_threshold = match schedule.priority_update {
        PriorityUpdateStrategy::EagerWithFusion => Some(schedule.fusion_threshold),
        _ => None,
    };
    let grain = schedule.grain();
    let dedup = udf
        .needs_final_dedup()
        .then(|| ClaimFlags::new(graph.num_vertices()));

    // Shared round state.
    let frontier = SharedFrontier::new(graph.num_edges() + graph.num_vertices() + 1);
    let cursor = ChunkCursor::new(0, grain.max(1));
    let next_bucket = AtomicUsize::new(NO_BUCKET);
    let abort = AtomicBool::new(false);

    // Shared stats accumulators.
    let rounds = AtomicU64::new(0);
    let buckets = AtomicU64::new(0);
    let fused_rounds = AtomicU64::new(0);
    let relaxations = AtomicU64::new(0);
    let bin_pushes = AtomicU64::new(0);
    // Per-round relaxation accumulator for the observer: workers flush
    // their delta here at the top of each loop iteration (before the
    // propose barrier), and the leader swaps it out when it finalizes the
    // previous round's report. Untouched when unobserved.
    let obs_relax = AtomicU64::new(0);

    pool.broadcast(|w| {
        let bins = RefCell::new(LocalBins::new());
        // Fusion drain scratch: ping-pongs storage with the current bin so
        // fused iterations allocate nothing (see `LocalBins::swap_bin`).
        let mut fuse_scratch: Vec<VertexId> = Vec::new();
        let mut local_relax: u64 = 0;
        let mut local_fused: u64 = 0;
        // Observer state: how much of `local_relax` has been flushed to
        // `obs_relax`, and (leader only) the round awaiting its final
        // relaxation count. A round's report is published at the start of
        // the *next* leader section, once every worker has flushed.
        let mut relax_reported: u64 = 0;
        let mut pending_round: Option<RoundInfo> = None;

        // Distribute the seeds into thread-local bins.
        for i in w.static_range(seeds.len()) {
            let v = seeds[i];
            let pri = priorities[v as usize].load(Ordering::Relaxed);
            if let Some(b) = map.bucket_of(pri) {
                assert!(b >= 0, "eager engine requires non-negative priorities");
                bins.borrow_mut().push(b as usize, v);
            }
        }

        let mut cur_bucket = 0usize;
        let mut last_bucket = NO_BUCKET;
        loop {
            // --- Flush this worker's relaxation delta for the observer
            //     (one `is_some` test when unobserved). The barrier below
            //     orders every flush before the leader's report. ---
            if observer.is_some() && local_relax != relax_reported {
                obs_relax.fetch_add(local_relax - relax_reported, Ordering::Relaxed);
                relax_reported = local_relax;
            }

            // --- Propose the next bucket from this thread's bins. ---
            if let Some(b) = bins.borrow().min_nonempty_from(cur_bucket) {
                next_bucket.fetch_min(b, Ordering::AcqRel);
            }
            w.barrier();

            // --- Leader decides: done, stopped, or proceed. ---
            if w.tid() == 0 {
                // Finalize the previous round's report: all workers have
                // flushed their relaxation deltas before the barrier above.
                if let (Some(obs), Some(mut info)) = (observer, pending_round.take()) {
                    info.relaxations = obs_relax.swap(0, Ordering::Relaxed);
                    obs.on_round(&info);
                }
                let next = next_bucket.load(Ordering::Acquire);
                if next == NO_BUCKET {
                    abort.store(true, Ordering::Release);
                } else {
                    let cur_priority = map.priority_of_bucket(next as i64);
                    if let Some(stop) = stop {
                        let view = crate::engine::StopView::new(priorities);
                        if stop(cur_priority, &view) {
                            abort.store(true, Ordering::Release);
                        }
                    }
                    if !abort.load(Ordering::Acquire) {
                        rounds.fetch_add(1, Ordering::Relaxed);
                        if next != last_bucket {
                            buckets.fetch_add(1, Ordering::Relaxed);
                        }
                        last_bucket = next;
                    }
                }
                frontier.reset();
            }
            w.barrier();
            if abort.load(Ordering::Acquire) {
                break;
            }
            let next = next_bucket.load(Ordering::Acquire);

            // --- Copy local bins for `next` into the global frontier
            //     (redistributes work across threads, §3.2); the bin keeps
            //     its storage for the next round. ---
            bins.borrow_mut().flush_into(next, &frontier);
            w.barrier();
            if w.tid() == 0 {
                cursor.reset(frontier.len());
                if observer.is_some() {
                    // Frontier is fully assembled; relaxations arrive when
                    // workers flush before the next leader section.
                    pending_round = Some(RoundInfo {
                        round: rounds.load(Ordering::Relaxed),
                        bucket: next as i64,
                        priority: map.priority_of_bucket(next as i64),
                        frontier: frontier.len(),
                        relaxations: 0,
                    });
                }
                next_bucket.store(NO_BUCKET, Ordering::Release);
            }
            w.barrier();
            cur_bucket = next;
            let cur_priority = map.priority_of_bucket(cur_bucket as i64);

            let ctx = EagerCtx {
                priorities,
                map,
                cur_priority,
                bins: &bins,
            };
            let process = |v: VertexId, local_relax: &mut u64| {
                // Staleness filter: the entry is live only if the vertex
                // still maps to the current bucket (GAPBS's
                // `dist[u] >= delta * curr_bin` check).
                let pri = priorities[v as usize].load(Ordering::Relaxed);
                if map.bucket_of(pri) != Some(cur_bucket as i64) {
                    return;
                }
                if let Some(flags) = &dedup {
                    if !flags.try_claim(v as usize) {
                        return;
                    }
                }
                for e in graph.out_edges(v) {
                    udf.apply(v, e.dst, e.weight, &ctx);
                    *local_relax += 1;
                }
            };

            // --- Main processing: dynamic chunks of the shared frontier. ---
            while let Some(chunk) = cursor.next_chunk() {
                for i in chunk {
                    process(frontier.get(i), &mut local_relax);
                }
            }

            // --- Bucket fusion: drain the current local bin in place while
            //     it stays small (Figure 7 lines 14–21). Draining swaps the
            //     bin with the scratch vector, so new pushes land in warm
            //     storage and no iteration allocates. ---
            if let Some(threshold) = fusion_threshold {
                loop {
                    let len = bins.borrow().len_of(cur_bucket);
                    if len == 0 || len >= threshold {
                        break;
                    }
                    bins.borrow_mut().swap_bin(cur_bucket, &mut fuse_scratch);
                    local_fused += 1;
                    for &v in &fuse_scratch {
                        process(v, &mut local_relax);
                    }
                    fuse_scratch.clear();
                }
            }
        }

        relaxations.fetch_add(local_relax, Ordering::Relaxed);
        fused_rounds.fetch_add(local_fused, Ordering::Relaxed);
        bin_pushes.fetch_add(bins.borrow().total_pushes(), Ordering::Relaxed);
    });

    ExecStats {
        rounds: rounds.into_inner(),
        buckets: buckets.into_inner(),
        fused_rounds: fused_rounds.into_inner(),
        relaxations: relaxations.into_inner(),
        bucket_inserts: bin_pushes.into_inner(),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_ordered_on;
    use crate::problem::OrderedProblem;
    use crate::udf::{DecrementToFloor, MinPlusWeight};
    use priograph_buckets::NULL_PRIORITY;
    use priograph_graph::gen::GraphGen;
    use priograph_graph::GraphBuilder;

    fn sssp(graph: &CsrGraph, schedule: &Schedule, source: VertexId, threads: usize) -> Vec<i64> {
        let pool = Pool::new(threads);
        let p = OrderedProblem::lower_first(graph)
            .allow_coarsening()
            .init_constant(NULL_PRIORITY)
            .seed(source, 0);
        run_ordered_on(&pool, &p, schedule, &MinPlusWeight, None)
            .unwrap()
            .priorities
    }

    fn diamond() -> CsrGraph {
        GraphBuilder::new(5)
            .edge(0, 1, 5)
            .edge(0, 2, 1)
            .edge(2, 1, 1)
            .edge(1, 3, 2)
            .edge(2, 3, 10)
            .build()
    }

    #[test]
    fn eager_finds_shortest_paths() {
        let g = diamond();
        for threads in [1, 4] {
            let d = sssp(&g, &Schedule::eager(1), 0, threads);
            assert_eq!(d[..4], [0, 2, 1, 4], "threads={threads}");
            assert_eq!(d[4], NULL_PRIORITY);
        }
    }

    #[test]
    fn fusion_matches_no_fusion() {
        let g = GraphGen::road_grid(12, 12).seed(3).build();
        let with = sssp(&g, &Schedule::eager_with_fusion(64), 0, 4);
        let without = sssp(&g, &Schedule::eager(64), 0, 4);
        assert_eq!(with, without);
    }

    #[test]
    fn fusion_reduces_synchronized_rounds_on_high_diameter_graphs() {
        let g = GraphGen::road_grid(24, 24).seed(1).build();
        let pool = Pool::new(4);
        let p = OrderedProblem::lower_first(&g)
            .allow_coarsening()
            .init_constant(NULL_PRIORITY)
            .seed(0, 0);
        let fused = run_ordered_on(
            &pool,
            &p,
            &Schedule::eager_with_fusion(64),
            &MinPlusWeight,
            None,
        )
        .unwrap();
        let plain = run_ordered_on(&pool, &p, &Schedule::eager(64), &MinPlusWeight, None).unwrap();
        assert_eq!(fused.priorities, plain.priorities);
        assert!(
            fused.stats.rounds < plain.stats.rounds,
            "fusion {} rounds vs plain {}",
            fused.stats.rounds,
            plain.stats.rounds
        );
        assert!(fused.stats.fused_rounds > 0);
        assert_eq!(plain.stats.fused_rounds, 0);
    }

    #[test]
    fn eager_matches_lazy_on_random_graphs() {
        for seed in [1, 2, 3] {
            let g = GraphGen::rmat(7, 8)
                .seed(seed)
                .weights_uniform(1, 100)
                .build();
            let eager = sssp(&g, &Schedule::eager(4), 0, 4);
            let lazy = sssp(&g, &Schedule::lazy(4), 0, 4);
            assert_eq!(eager, lazy, "seed={seed}");
        }
    }

    #[test]
    fn eager_kcore_with_dedup_matches_lazy() {
        let g = GraphGen::rmat(7, 6).seed(9).build().symmetrize();
        let pool = Pool::new(4);
        let degrees: Vec<i64> = g.vertices().map(|v| g.out_degree(v) as i64).collect();
        let problem = OrderedProblem::lower_first(&g)
            .init_per_vertex(degrees)
            .seed_all_finite();
        let eager = run_ordered_on(
            &pool,
            &problem,
            &Schedule::eager(1),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        let lazy = run_ordered_on(
            &pool,
            &problem,
            &Schedule::lazy_constant_sum(),
            &DecrementToFloor,
            None,
        )
        .unwrap();
        assert_eq!(eager.priorities, lazy.priorities);
    }

    #[test]
    fn stop_condition_halts_eager() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 1)
            .edge(1, 2, 1)
            .edge(2, 3, 1)
            .build();
        let pool = Pool::new(2);
        let p = OrderedProblem::lower_first(&g)
            .init_constant(NULL_PRIORITY)
            .seed(0, 0);
        let stop = |pri: i64, _: &crate::engine::StopView<'_>| pri >= 2;
        let out =
            run_ordered_on(&pool, &p, &Schedule::eager(1), &MinPlusWeight, Some(&stop)).unwrap();
        assert_eq!(out.priorities[3], NULL_PRIORITY);
        assert_eq!(out.priorities[1], 1);
    }

    #[test]
    fn disconnected_source_terminates_immediately() {
        let g = GraphBuilder::new(3).edge(1, 2, 1).build();
        let d = sssp(&g, &Schedule::eager_with_fusion(2), 0, 2);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], NULL_PRIORITY);
        assert_eq!(d[2], NULL_PRIORITY);
    }

    #[test]
    fn single_thread_pool_works() {
        let g = GraphGen::road_grid(8, 8).seed(2).build();
        let a = sssp(&g, &Schedule::eager_with_fusion(32), 0, 1);
        let b = sssp(&g, &Schedule::lazy(32), 0, 1);
        assert_eq!(a, b);
    }
}
