//! Execution engines — the code the GraphIt compiler would generate.
//!
//! [`run_ordered_on`] validates a [`Schedule`] against an
//! [`OrderedProblem`] + UDF (the runtime analogue of the paper's §5 program
//! analyses) and dispatches to:
//!
//! * [`lazy`] — bulk-synchronous rounds over a
//!   [`priograph_buckets::LazyBucketQueue`] (sparse-push, dense-pull, or
//!   constant-sum-histogram traversal), Figure 9(a)/(b);
//! * [`eager`] — one long-lived parallel region with thread-local bins,
//!   optional **bucket fusion**, Figure 9(c) + Figure 7.

pub(crate) mod ctx;
pub mod eager;
pub mod lazy;
pub mod observe;

pub use observe::{RoundInfo, RoundObserver};

use crate::problem::{OrderedOutput, OrderedProblem};
use crate::schedule::{Direction, PriorityUpdateStrategy, Schedule, ScheduleError};
use crate::udf::OrderedUdf;
use priograph_buckets::{BucketOrder, PriorityMap};
use priograph_parallel::atomics::snapshot;
use priograph_parallel::Pool;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

/// Read-only view of the live priority vector handed to stop conditions.
#[derive(Clone, Copy)]
pub struct StopView<'a> {
    priorities: &'a [AtomicI64],
}

impl std::fmt::Debug for StopView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StopView(len = {})", self.priorities.len())
    }
}

impl<'a> StopView<'a> {
    /// Wraps a live priority vector.
    pub(crate) fn new(priorities: &'a [AtomicI64]) -> StopView<'a> {
        StopView { priorities }
    }

    /// Reads the current priority of `v` (relaxed).
    pub fn priority_of(&self, v: priograph_graph::VertexId) -> i64 {
        self.priorities[v as usize].load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A stop condition evaluated once per round on the priority value of the
/// bucket about to be processed, with read access to the live priorities;
/// returning `true` halts the run (paper §2: "the user can define a
/// customized stop condition, for example to halt once a certain vertex has
/// been finalized").
pub type StopFn<'a> = &'a (dyn Fn(i64, &StopView<'_>) -> bool + Sync);

/// Checks that `schedule` is applicable — the checks the paper's compiler
/// performs before generating code.
///
/// # Errors
///
/// Returns the first violated constraint (see [`ScheduleError`]).
pub fn validate<U: OrderedUdf>(
    problem: &OrderedProblem<'_>,
    schedule: &Schedule,
    udf: &U,
) -> Result<(), ScheduleError> {
    if schedule.delta < 1 {
        return Err(ScheduleError::InvalidDelta {
            delta: schedule.delta,
        });
    }
    if schedule.delta > 1 && !problem.coarsening_allowed {
        return Err(ScheduleError::CoarseningNotAllowed {
            delta: schedule.delta,
        });
    }
    if schedule.is_eager() {
        if problem.order != BucketOrder::Increasing {
            return Err(ScheduleError::EagerRequiresLowerFirst);
        }
        if schedule.direction == Direction::DensePull {
            return Err(ScheduleError::DensePullRequiresLazy);
        }
    }
    if schedule.priority_update == PriorityUpdateStrategy::EagerWithFusion
        && schedule.fusion_threshold == 0
    {
        return Err(ScheduleError::InvalidFusionThreshold);
    }
    if schedule.priority_update == PriorityUpdateStrategy::LazyConstantSum
        && udf.constant_sum().is_none()
    {
        return Err(ScheduleError::ConstantSumRequired);
    }
    Ok(())
}

/// Runs an ordered algorithm on the global thread pool.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the schedule is invalid for the problem
/// (see [`validate`]).
pub fn run_ordered<U: OrderedUdf>(
    problem: &OrderedProblem<'_>,
    schedule: &Schedule,
    udf: &U,
) -> Result<OrderedOutput, ScheduleError> {
    run_ordered_on(priograph_parallel::global(), problem, schedule, udf, None)
}

/// Runs an ordered algorithm on `pool`, with an optional stop condition.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the schedule is invalid for the problem.
pub fn run_ordered_on<U: OrderedUdf>(
    pool: &Pool,
    problem: &OrderedProblem<'_>,
    schedule: &Schedule,
    udf: &U,
    stop: Option<StopFn<'_>>,
) -> Result<OrderedOutput, ScheduleError> {
    run_ordered_observed(pool, problem, schedule, udf, stop, None)
}

/// Runs an ordered algorithm on `pool` with an optional stop condition and
/// an optional per-round profiling observer (see [`observe`]). With
/// `observer == None` this is exactly [`run_ordered_on`].
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the schedule is invalid for the problem.
pub fn run_ordered_observed<U: OrderedUdf>(
    pool: &Pool,
    problem: &OrderedProblem<'_>,
    schedule: &Schedule,
    udf: &U,
    stop: Option<StopFn<'_>>,
    observer: Option<&dyn RoundObserver>,
) -> Result<OrderedOutput, ScheduleError> {
    validate(problem, schedule, udf)?;
    let init = problem.initial_priorities();
    let seeds = problem.seed_vertices(&init);
    let priorities: Arc<[AtomicI64]> = init.into_iter().map(AtomicI64::new).collect();
    let map = PriorityMap::new(problem.order, schedule.delta);

    let stats = if schedule.is_eager() {
        eager::run_eager(
            pool,
            problem.graph,
            &priorities,
            map,
            schedule,
            &seeds,
            udf,
            stop,
            observer,
        )
    } else {
        lazy::run_lazy(
            pool,
            problem.graph,
            Arc::clone(&priorities),
            map,
            schedule,
            seeds,
            udf,
            stop,
            observer,
        )
    };

    Ok(OrderedOutput {
        priorities: snapshot(&priorities),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::{DecrementToFloor, MinPlusWeight};
    use priograph_graph::gen::GraphGen;

    #[test]
    fn validate_rejects_coarsening_when_forbidden() {
        let g = GraphGen::path(4).build();
        let p = OrderedProblem::lower_first(&g);
        let err = validate(&p, &Schedule::eager(8), &MinPlusWeight).unwrap_err();
        assert_eq!(err, ScheduleError::CoarseningNotAllowed { delta: 8 });
        let p = p.allow_coarsening();
        assert!(validate(&p, &Schedule::eager(8), &MinPlusWeight).is_ok());
    }

    #[test]
    fn validate_rejects_eager_higher_first() {
        let g = GraphGen::path(4).build();
        let p = OrderedProblem::higher_first(&g);
        let err = validate(&p, &Schedule::eager(1), &MinPlusWeight).unwrap_err();
        assert_eq!(err, ScheduleError::EagerRequiresLowerFirst);
        assert!(validate(&p, &Schedule::lazy(1), &MinPlusWeight).is_ok());
    }

    #[test]
    fn validate_rejects_constant_sum_for_general_udf() {
        let g = GraphGen::path(4).build();
        let p = OrderedProblem::lower_first(&g);
        let err = validate(&p, &Schedule::lazy_constant_sum(), &MinPlusWeight).unwrap_err();
        assert_eq!(err, ScheduleError::ConstantSumRequired);
        assert!(validate(&p, &Schedule::lazy_constant_sum(), &DecrementToFloor).is_ok());
    }

    #[test]
    fn validate_rejects_dense_pull_eager() {
        let g = GraphGen::path(4).build();
        let p = OrderedProblem::lower_first(&g);
        let s = Schedule::eager(1).config_apply_direction(Direction::DensePull);
        assert_eq!(
            validate(&p, &s, &MinPlusWeight).unwrap_err(),
            ScheduleError::DensePullRequiresLazy
        );
    }

    #[test]
    fn observer_totals_match_exec_stats_on_both_engines() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct Tally {
            rounds: AtomicU64,
            relaxations: AtomicU64,
            frontier: AtomicU64,
        }
        impl RoundObserver for Tally {
            fn on_round(&self, info: &RoundInfo) {
                self.rounds.fetch_add(1, Ordering::Relaxed);
                self.relaxations
                    .fetch_add(info.relaxations, Ordering::Relaxed);
                self.frontier
                    .fetch_add(info.frontier as u64, Ordering::Relaxed);
                assert!(info.round >= 1, "rounds are 1-based");
                assert!(info.bucket >= 0);
            }
        }

        let g = priograph_graph::gen::GraphGen::road_grid(12, 12)
            .seed(5)
            .weights_uniform(1, 16)
            .build();
        let pool = priograph_parallel::Pool::new(4);
        let p = OrderedProblem::lower_first(&g)
            .allow_coarsening()
            .init_constant(priograph_buckets::NULL_PRIORITY)
            .seed(0, 0);
        for schedule in [
            Schedule::lazy(4),
            Schedule::eager(4),
            Schedule::eager_with_fusion(16),
        ] {
            let tally = Tally::default();
            let out = run_ordered_observed(
                &pool,
                &p,
                &schedule,
                &crate::udf::MinPlusWeight,
                None,
                Some(&tally),
            )
            .unwrap();
            assert_eq!(
                tally.rounds.load(Ordering::Relaxed),
                out.stats.rounds,
                "observer round count mismatch for {schedule:?}"
            );
            assert_eq!(
                tally.relaxations.load(Ordering::Relaxed),
                out.stats.relaxations,
                "observer relaxation total mismatch for {schedule:?}"
            );
            assert!(tally.frontier.load(Ordering::Relaxed) > 0);
            // Observed and unobserved runs compute identical results.
            let plain =
                run_ordered_on(&pool, &p, &schedule, &crate::udf::MinPlusWeight, None).unwrap();
            assert_eq!(out.priorities, plain.priorities);
        }
    }

    #[test]
    fn engines_on_executor_backed_pool_reconcile_and_match_own_pool() {
        // The work-stealing executor's gang regions must be a drop-in
        // replacement for the dedicated pool: identical priorities AND exact
        // observer/ExecStats reconciliation across lazy/eager/fusion, even
        // with interactive packets streaming through the same workers.
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
        use std::sync::Arc;

        #[derive(Default)]
        struct Tally {
            rounds: AtomicU64,
            relaxations: AtomicU64,
        }
        impl RoundObserver for Tally {
            fn on_round(&self, info: &RoundInfo) {
                self.rounds.fetch_add(1, Ordering::Relaxed);
                self.relaxations
                    .fetch_add(info.relaxations, Ordering::Relaxed);
            }
        }

        let g = priograph_graph::gen::GraphGen::road_grid(12, 12)
            .seed(5)
            .weights_uniform(1, 16)
            .build();
        let own = priograph_parallel::Pool::new(4);
        let exec = Arc::new(priograph_parallel::Executor::new(4));
        let pool = priograph_parallel::Pool::attach(&exec);
        let p = OrderedProblem::lower_first(&g)
            .allow_coarsening()
            .init_constant(priograph_buckets::NULL_PRIORITY)
            .seed(0, 0);

        // A concurrent interactive trickle exercises barrier stealing.
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicUsize::new(0));
        let feeder = {
            let exec = Arc::clone(&exec);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let mut sent = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let served = Arc::clone(&served);
                    exec.submit(priograph_parallel::Lane::Interactive, move |_| {
                        served.fetch_add(1, Ordering::Relaxed);
                    });
                    sent += 1;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                sent
            })
        };

        for schedule in [
            Schedule::lazy(4),
            Schedule::eager(4),
            Schedule::eager_with_fusion(16),
        ] {
            let tally = Tally::default();
            let out = run_ordered_observed(
                &pool,
                &p,
                &schedule,
                &crate::udf::MinPlusWeight,
                None,
                Some(&tally),
            )
            .unwrap();
            assert_eq!(
                tally.rounds.load(Ordering::Relaxed),
                out.stats.rounds,
                "executor-backed observer round count mismatch for {schedule:?}"
            );
            assert_eq!(
                tally.relaxations.load(Ordering::Relaxed),
                out.stats.relaxations,
                "executor-backed observer relaxation mismatch for {schedule:?}"
            );
            let reference =
                run_ordered_on(&own, &p, &schedule, &crate::udf::MinPlusWeight, None).unwrap();
            assert_eq!(
                out.priorities, reference.priorities,
                "executor-backed result diverged for {schedule:?}"
            );
        }
        stop.store(true, Ordering::Release);
        let sent = feeder.join().unwrap();
        exec.wait_idle();
        assert_eq!(served.load(Ordering::Relaxed), sent);
        assert!(
            exec.stats().gangs > 0,
            "engines must have used gang regions"
        );
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let g = GraphGen::path(4).build();
        let p = OrderedProblem::lower_first(&g);
        assert_eq!(
            validate(&p, &Schedule::lazy(0), &MinPlusWeight).unwrap_err(),
            ScheduleError::InvalidDelta { delta: 0 }
        );
        let s = Schedule::eager_with_fusion(1).config_bucket_fusion_threshold(0);
        assert_eq!(
            validate(&p, &s, &MinPlusWeight).unwrap_err(),
            ScheduleError::InvalidFusionThreshold
        );
    }
}
