//! Engine-specific [`PriorityOps`] implementations.
//!
//! These are "what the compiler inserts" around a UDF's priority updates:
//! atomic write-mins, deduplicated output recording, and bucket insertion
//! (paper Figure 9, purple-highlighted lines).

use crate::udf::PriorityOps;
use priograph_buckets::{LocalBins, PriorityMap};
use priograph_graph::VertexId;
use priograph_parallel::atomics::{add_clamped, write_max, write_min};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Per-round claim stamps: `claim(v, round)` succeeds once per (v, round) —
/// the deduplication CAS of Figure 9(a) line 21, reusable across rounds
/// without clearing.
#[derive(Debug)]
pub(crate) struct RoundStamps {
    stamps: Box<[AtomicU64]>,
}

impl RoundStamps {
    pub(crate) fn new(n: usize) -> Self {
        RoundStamps {
            stamps: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// True exactly once per vertex per round (rounds must start at 1).
    #[inline]
    pub(crate) fn claim(&self, v: VertexId, round: u64) -> bool {
        self.stamps[v as usize].swap(round, Ordering::Relaxed) != round
    }
}

/// Context for lazy SparsePush rounds: atomic updates + deduplicated append
/// to this worker's round-output buffer.
///
/// The buffer is one slot of the engine's reusable
/// [`WorkerLocal`](priograph_parallel::shared::WorkerLocal) update log —
/// recording a winner is a plain unsynchronized push (the global `stamps`
/// CAS already guarantees each vertex lands in exactly one worker's log),
/// and the logs are merged by scan compaction after the traversal. `RefCell`
/// because the UDF only holds `&self`.
pub(crate) struct SparseCtx<'a> {
    pub priorities: &'a [AtomicI64],
    pub cur_priority: i64,
    pub out: &'a RefCell<Vec<VertexId>>,
    pub stamps: &'a RoundStamps,
    pub round: u64,
}

impl SparseCtx<'_> {
    #[inline]
    fn record(&self, v: VertexId) {
        if self.stamps.claim(v, self.round) {
            self.out.borrow_mut().push(v);
        }
    }
}

impl PriorityOps for SparseCtx<'_> {
    #[inline]
    fn current_priority(&self) -> i64 {
        self.cur_priority
    }

    #[inline]
    fn get(&self, v: VertexId) -> i64 {
        self.priorities[v as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn update_min(&self, v: VertexId, new_val: i64) {
        if write_min(&self.priorities[v as usize], new_val) {
            self.record(v);
        }
    }

    #[inline]
    fn update_max(&self, v: VertexId, new_val: i64) {
        if write_max(&self.priorities[v as usize], new_val) {
            self.record(v);
        }
    }

    #[inline]
    fn update_sum(&self, v: VertexId, delta: i64, threshold: i64) {
        if add_clamped(&self.priorities[v as usize], delta, threshold).is_some() {
            self.record(v);
        }
    }
}

/// Context for lazy DensePull rounds: the owning thread updates its own
/// destination vertex, so no atomics are required (Figure 9(b): "in the
/// DensePull traversal direction, no atomics are needed for the destination
/// nodes").
pub(crate) struct DenseCtx<'a> {
    pub priorities: &'a [AtomicI64],
    pub cur_priority: i64,
    /// Set when any update changed the destination's priority
    /// (the `tracking_var` of Figure 9(b) line 16).
    pub changed: Cell<bool>,
}

impl PriorityOps for DenseCtx<'_> {
    #[inline]
    fn current_priority(&self) -> i64 {
        self.cur_priority
    }

    #[inline]
    fn get(&self, v: VertexId) -> i64 {
        self.priorities[v as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn update_min(&self, v: VertexId, new_val: i64) {
        let cell = &self.priorities[v as usize];
        if new_val < cell.load(Ordering::Relaxed) {
            cell.store(new_val, Ordering::Relaxed);
            self.changed.set(true);
        }
    }

    #[inline]
    fn update_max(&self, v: VertexId, new_val: i64) {
        let cell = &self.priorities[v as usize];
        if new_val > cell.load(Ordering::Relaxed) {
            cell.store(new_val, Ordering::Relaxed);
            self.changed.set(true);
        }
    }

    #[inline]
    fn update_sum(&self, v: VertexId, delta: i64, threshold: i64) {
        let cell = &self.priorities[v as usize];
        let current = cell.load(Ordering::Relaxed);
        if delta < 0 && current <= threshold {
            return;
        }
        let target = if delta < 0 {
            (current + delta).max(threshold)
        } else {
            current + delta
        };
        if target != current {
            cell.store(target, Ordering::Relaxed);
            self.changed.set(true);
        }
    }
}

/// Context for the eager engine: atomic updates push the vertex straight
/// into this thread's local bin for its new bucket (Figure 9(c) lines
/// 19–26).
pub(crate) struct EagerCtx<'a> {
    pub priorities: &'a [AtomicI64],
    pub map: PriorityMap,
    pub cur_priority: i64,
    /// This thread's bins; `RefCell` because the UDF only holds `&self`.
    pub bins: &'a RefCell<LocalBins>,
}

impl EagerCtx<'_> {
    #[inline]
    fn bin_insert(&self, v: VertexId, priority: i64) {
        if let Some(bucket) = self.map.bucket_of(priority) {
            debug_assert!(bucket >= 0, "eager bins need non-negative buckets");
            self.bins.borrow_mut().push(bucket as usize, v);
        }
    }
}

impl PriorityOps for EagerCtx<'_> {
    #[inline]
    fn current_priority(&self) -> i64 {
        self.cur_priority
    }

    #[inline]
    fn get(&self, v: VertexId) -> i64 {
        self.priorities[v as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn update_min(&self, v: VertexId, new_val: i64) {
        if write_min(&self.priorities[v as usize], new_val) {
            self.bin_insert(v, new_val);
        }
    }

    #[inline]
    fn update_max(&self, v: VertexId, new_val: i64) {
        if write_max(&self.priorities[v as usize], new_val) {
            self.bin_insert(v, new_val);
        }
    }

    #[inline]
    fn update_sum(&self, v: VertexId, delta: i64, threshold: i64) {
        if add_clamped(&self.priorities[v as usize], delta, threshold).is_some() {
            // Re-read: another thread may have moved it further; inserting at
            // the later bucket is safe (the pop-time staleness filter drops
            // mismatches).
            let now = self.priorities[v as usize].load(Ordering::Relaxed);
            self.bin_insert(v, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_buckets::BucketOrder;
    use priograph_parallel::atomics::atomic_vec;

    #[test]
    fn round_stamps_claim_once_per_round() {
        let stamps = RoundStamps::new(4);
        assert!(stamps.claim(2, 1));
        assert!(!stamps.claim(2, 1));
        assert!(stamps.claim(2, 2));
        assert!(stamps.claim(3, 2));
    }

    #[test]
    fn sparse_ctx_records_winners_once() {
        let pri = atomic_vec(4, 100);
        let out = RefCell::new(Vec::new());
        let stamps = RoundStamps::new(4);
        let ctx = SparseCtx {
            priorities: &pri,
            cur_priority: 0,
            out: &out,
            stamps: &stamps,
            round: 1,
        };
        ctx.update_min(1, 50);
        ctx.update_min(1, 40); // improves again, but already recorded
        ctx.update_min(2, 200); // loses
        assert_eq!(ctx.get(1), 40);
        assert_eq!(out.into_inner(), vec![1]);
    }

    #[test]
    fn dense_ctx_updates_without_atomics_and_tracks_change() {
        let pri = atomic_vec(2, 10);
        let ctx = DenseCtx {
            priorities: &pri,
            cur_priority: 0,
            changed: Cell::new(false),
        };
        ctx.update_min(0, 20);
        assert!(!ctx.changed.get());
        ctx.update_min(0, 5);
        assert!(ctx.changed.get());
        assert_eq!(ctx.get(0), 5);
    }

    #[test]
    fn dense_ctx_sum_respects_floor_and_finalized() {
        let pri = atomic_vec(1, 10);
        let ctx = DenseCtx {
            priorities: &pri,
            cur_priority: 0,
            changed: Cell::new(false),
        };
        ctx.update_sum(0, -4, 8);
        assert_eq!(ctx.get(0), 8);
        ctx.changed.set(false);
        ctx.update_sum(0, -4, 8); // at floor: no-op
        assert!(!ctx.changed.get());
        pri[0].store(3, Ordering::Relaxed);
        ctx.update_sum(0, -1, 8); // below floor (finalized): no-op
        assert_eq!(ctx.get(0), 3);
    }

    #[test]
    fn eager_ctx_pushes_into_local_bin() {
        let pri = atomic_vec(4, 100);
        let bins = RefCell::new(LocalBins::new());
        let map = PriorityMap::new(BucketOrder::Increasing, 10);
        let ctx = EagerCtx {
            priorities: &pri,
            map,
            cur_priority: 0,
            bins: &bins,
        };
        ctx.update_min(3, 25); // bucket 2
        ctx.update_min(3, 24); // still bucket 2, pushed again (eager!)
        assert_eq!(bins.borrow().len_of(2), 2);
        assert_eq!(bins.borrow().total_pushes(), 2);
    }

    #[test]
    fn eager_ctx_sum_reinserts_at_new_bucket() {
        let pri = atomic_vec(1, 5);
        let bins = RefCell::new(LocalBins::new());
        let map = PriorityMap::new(BucketOrder::Increasing, 1);
        let ctx = EagerCtx {
            priorities: &pri,
            map,
            cur_priority: 2,
            bins: &bins,
        };
        ctx.update_sum(0, -1, 2);
        assert_eq!(pri[0].load(Ordering::Relaxed), 4);
        assert_eq!(bins.borrow().len_of(4), 1);
    }
}
