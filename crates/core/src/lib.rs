//! The priority-based ordered graph programming model — the contribution of
//! *Optimizing Ordered Graph Algorithms with GraphIt* (CGO 2020), as a Rust
//! library.
//!
//! Three layers mirror the paper's architecture:
//!
//! 1. **Algorithm language** ([`pq::PriorityQueue`], [`udf::OrderedUdf`],
//!    [`udf::PriorityOps`]) — the Table-1 operators: `dequeueReadySet`,
//!    `updatePriorityMin/Max/Sum`, `finished`, `finishedVertex`,
//!    `getCurrentPriority`. Algorithms say *what* to compute and never touch
//!    atomics, buckets, or deduplication.
//! 2. **Scheduling language** ([`schedule::Schedule`]) — the Table-2 knobs:
//!    eager vs lazy bucketing, bucket fusion and its threshold, the
//!    coarsening Δ, traversal direction, parallelization grain, number of
//!    materialized buckets.
//! 3. **Engines + compiler** ([`engine`], [`ir`]) — the "generated code":
//!    a bulk-synchronous lazy engine (sparse-push / dense-pull /
//!    constant-sum-histogram variants) and a single-parallel-region eager
//!    engine with the paper's novel **bucket fusion** optimization. The
//!    [`ir`] module reproduces the compiler's program representation,
//!    analyses (write-conflict, single-update, constant-sum, loop-pattern),
//!    UDF transformation (Figure 10), plan lowering with schedule
//!    validation, pseudo-C++ code generation (Figure 9), and an interpreter
//!    that executes compiled plans on the engines.
//!
//! # Example: Δ-stepping in a few lines
//!
//! ```
//! use priograph_core::prelude::*;
//! use priograph_graph::gen::GraphGen;
//!
//! let graph = GraphGen::rmat(8, 8).seed(1).weights_uniform(1, 100).build();
//! let problem = OrderedProblem::lower_first(&graph)
//!     .allow_coarsening()
//!     .init_constant(NULL_PRIORITY)
//!     .seed(0, 0); // dist[0] = 0
//! let udf = MinPlusWeight; // pq.updatePriorityMin(dst, pri[src] + w)
//! let out = run_ordered(&problem, &Schedule::eager_with_fusion(8), &udf).unwrap();
//! assert_eq!(out.priorities[0], 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod ir;
pub mod plan;
pub mod pq;
pub mod schedule;
pub mod stats;
pub mod udf;
pub mod vertexset;

mod problem;

pub use plan::{AlgoFamily, GraphProfile, PlanOrigin, QueryPlan};
pub use problem::{InitPriorities, OrderedOutput, OrderedProblem, Seeds};

/// Convenience re-exports for algorithm authors.
pub mod prelude {
    pub use crate::engine::{run_ordered, run_ordered_on};
    pub use crate::problem::{OrderedOutput, OrderedProblem};
    pub use crate::schedule::{Direction, PriorityUpdateStrategy, Schedule, ScheduleError};
    pub use crate::stats::ExecStats;
    pub use crate::udf::{FnUdf, MinPlusWeight, OrderedUdf, PriorityOps};
    pub use crate::vertexset::VertexSubset;
    pub use priograph_buckets::{BucketOrder, NULL_PRIORITY};
}
