//! The abstract priority queue of the algorithm language (paper Table 1).
//!
//! This facade gives algorithms the exact operator set of Figure 3 for
//! custom ordered loops (SetCover drives it directly):
//!
//! ```text
//! while (pq.finished() == false)
//!     var bucket : vertexset = pq.dequeueReadySet();
//!     #s1# edges.from(bucket).applyUpdatePriority(updateEdge);
//! end
//! ```
//!
//! Internally it is backed by the lazy bucket structure; priority updates
//! made between dequeues are buffered (deduplicated) and flushed to the
//! buckets before the next dequeue — callers never see bucket mechanics.
//! For whole-algorithm runs where the compiler would fuse the loop into an
//! ordered operator, use [`crate::engine::run_ordered_on`] instead.

use crate::schedule::Schedule;
use crate::udf::{OrderedUdf, PriorityOps};
use crate::vertexset::VertexSubset;
use priograph_buckets::{BucketOrder, LazyBucketQueue, PriorityMap, SharedFrontier};
use priograph_graph::{CsrGraph, VertexId};
use priograph_parallel::atomics::{add_clamped, snapshot, write_max, write_min};
use priograph_parallel::Pool;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// An abstract priority queue over a graph's vertices.
pub struct PriorityQueue<'g> {
    graph: &'g CsrGraph,
    priorities: Arc<[AtomicI64]>,
    queue: LazyBucketQueue,
    map: PriorityMap,
    /// Buffered updates since the last dequeue.
    pending: SharedFrontier,
    /// Reusable flush scratch (cleared, never dropped, between flushes).
    pending_buf: Vec<VertexId>,
    stamps: crate::engine::ctx::RoundStamps,
    round: AtomicU64,
    /// Bucket returned by the most recent dequeue.
    current: Option<i64>,
    /// Cached next bucket for `finished()` lookahead.
    lookahead: Option<(i64, Vec<VertexId>)>,
}

impl fmt::Debug for PriorityQueue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PriorityQueue")
            .field("num_vertices", &self.priorities.len())
            .field("current", &self.current)
            .finish()
    }
}

impl<'g> PriorityQueue<'g> {
    /// Constructs a queue (paper Table 1's `new priority_queue(...)`).
    ///
    /// * `order` — `lower_first` ([`BucketOrder::Increasing`]) or
    ///   `higher_first` ([`BucketOrder::Decreasing`]).
    /// * `initial` — the priority vector (one value per vertex; use
    ///   [`priograph_buckets::NULL_PRIORITY`] for ∅).
    /// * `seeds` — initially scheduled vertices.
    /// * `schedule` — supplies Δ and the number of open buckets.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the vertex count.
    pub fn new(
        graph: &'g CsrGraph,
        order: BucketOrder,
        initial: Vec<i64>,
        seeds: &[VertexId],
        schedule: &Schedule,
    ) -> Self {
        assert_eq!(
            initial.len(),
            graph.num_vertices(),
            "one priority per vertex"
        );
        let n = initial.len();
        let priorities: Arc<[AtomicI64]> = initial.into_iter().map(AtomicI64::new).collect();
        let map = PriorityMap::new(order, schedule.delta);
        let mut queue =
            LazyBucketQueue::new(Arc::clone(&priorities), map, schedule.num_open_buckets);
        queue.insert_initial(seeds.iter().copied());
        PriorityQueue {
            graph,
            priorities,
            queue,
            map,
            pending: SharedFrontier::new(n + 1),
            pending_buf: Vec::new(),
            stamps: crate::engine::ctx::RoundStamps::new(n),
            round: AtomicU64::new(0),
            current: None,
            lookahead: None,
        }
    }

    /// `pq.finished()`: true when no bucket remains.
    pub fn finished(&mut self, pool: &Pool) -> bool {
        self.flush_pending(pool);
        if self.lookahead.is_none() {
            self.lookahead = self.queue.next_bucket(pool);
        }
        self.lookahead.is_none()
    }

    /// `pq.dequeueReadySet()`: extracts the next ready bucket as a vertex
    /// subset. Returns an empty subset when finished.
    pub fn dequeue_ready_set(&mut self, pool: &Pool) -> VertexSubset {
        self.flush_pending(pool);
        let next = self
            .lookahead
            .take()
            .or_else(|| self.queue.next_bucket(pool));
        match next {
            Some((bucket, vertices)) => {
                self.current = Some(bucket);
                VertexSubset::from_vertices(vertices)
            }
            None => VertexSubset::new(),
        }
    }

    /// `pq.getCurrentPriority()`: priority of the bucket being processed.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been dequeued yet.
    pub fn get_current_priority(&self) -> i64 {
        let bucket = self.current.expect("no bucket dequeued yet");
        self.map.priority_of_bucket(bucket)
    }

    /// `pq.finishedVertex(v)`: true once `v`'s priority can no longer change
    /// (its bucket precedes the current one).
    pub fn finished_vertex(&self, v: VertexId) -> bool {
        let pri = self.priorities[v as usize].load(Ordering::Relaxed);
        match (self.map.bucket_of(pri), self.current) {
            (Some(b), Some(cur)) => b < cur,
            _ => false,
        }
    }

    /// Reads `v`'s current priority.
    pub fn priority_of(&self, v: VertexId) -> i64 {
        self.priorities[v as usize].load(Ordering::Relaxed)
    }

    /// `pq.updatePriorityMin(v, new_val)`.
    pub fn update_priority_min(&self, v: VertexId, new_val: i64) {
        if write_min(&self.priorities[v as usize], new_val) {
            self.record(v);
        }
    }

    /// `pq.updatePriorityMax(v, new_val)`.
    pub fn update_priority_max(&self, v: VertexId, new_val: i64) {
        if write_max(&self.priorities[v as usize], new_val) {
            self.record(v);
        }
    }

    /// `pq.updatePrioritySum(v, delta, threshold)`.
    pub fn update_priority_sum(&self, v: VertexId, delta: i64, threshold: i64) {
        if add_clamped(&self.priorities[v as usize], delta, threshold).is_some() {
            self.record(v);
        }
    }

    /// `edges.from(bucket).applyUpdatePriority(udf)`: one parallel
    /// sparse-push pass over the bucket's out-edges.
    pub fn apply_update_priority<U: OrderedUdf>(
        &mut self,
        pool: &Pool,
        bucket: &VertexSubset,
        udf: &U,
    ) {
        let ctx = FacadeCtx { pq: self };
        let frontier = bucket.as_slice();
        pool.parallel_for(0..frontier.len(), 64, |i| {
            let src = frontier[i];
            for e in self.graph.out_edges(src) {
                udf.apply(src, e.dst, e.weight, &ctx);
            }
        });
    }

    /// Removes `v` from further scheduling by setting its priority to the
    /// null value ∅ (stale bucket copies are dropped at extraction).
    pub fn finalize_vertex(&self, v: VertexId) {
        let null = match self.map.order() {
            BucketOrder::Increasing => priograph_buckets::NULL_PRIORITY,
            BucketOrder::Decreasing => -priograph_buckets::NULL_PRIORITY,
        };
        self.priorities[v as usize].store(null, Ordering::Relaxed);
    }

    /// Re-schedules `v` at its *current* priority even though it did not
    /// change (used by algorithms whose bucket processing can defer a vertex
    /// to a later round of the same bucket, e.g. SetCover sets that lost
    /// their element claims).
    pub fn reschedule(&self, v: VertexId) {
        self.record(v);
    }

    /// Snapshot of the priority vector.
    pub fn priorities(&self) -> Vec<i64> {
        snapshot(&self.priorities)
    }

    fn record(&self, v: VertexId) {
        let round = self.round.load(Ordering::Relaxed);
        if self.stamps.claim(v, round + 1) {
            self.pending.push(v);
        }
    }

    fn flush_pending(&mut self, pool: &Pool) {
        if self.pending.is_empty() {
            return;
        }
        let mut updated = std::mem::take(&mut self.pending_buf);
        self.pending.copy_into(&mut updated);
        self.pending.reset();
        self.round.fetch_add(1, Ordering::Relaxed);
        self.queue.bulk_update(pool, &updated);
        self.pending_buf = updated;
        // A buffered update may have re-filled an earlier bucket than the
        // cached lookahead; invalidate it.
        if let Some((bucket, vertices)) = self.lookahead.take() {
            // Re-queue the cached bucket contents so nothing is lost.
            let _ = bucket;
            for v in vertices {
                self.queue.insert(v);
            }
        }
    }
}

/// Priority operators bound to the facade, usable inside UDFs.
struct FacadeCtx<'a, 'g> {
    pq: &'a PriorityQueue<'g>,
}

impl PriorityOps for FacadeCtx<'_, '_> {
    fn current_priority(&self) -> i64 {
        self.pq.get_current_priority()
    }
    fn get(&self, v: VertexId) -> i64 {
        self.pq.priority_of(v)
    }
    fn update_min(&self, v: VertexId, new_val: i64) {
        self.pq.update_priority_min(v, new_val);
    }
    fn update_max(&self, v: VertexId, new_val: i64) {
        self.pq.update_priority_max(v, new_val);
    }
    fn update_sum(&self, v: VertexId, delta: i64, threshold: i64) {
        self.pq.update_priority_sum(v, delta, threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::MinPlusWeight;
    use priograph_buckets::NULL_PRIORITY;
    use priograph_graph::GraphBuilder;

    fn sssp_via_facade(graph: &CsrGraph, source: VertexId, delta: i64) -> Vec<i64> {
        let pool = Pool::new(2);
        let mut initial = vec![NULL_PRIORITY; graph.num_vertices()];
        initial[source as usize] = 0;
        let schedule = Schedule::lazy(delta);
        let mut pq = PriorityQueue::new(
            graph,
            BucketOrder::Increasing,
            initial,
            &[source],
            &schedule,
        );
        // The exact loop of paper Figure 3.
        while !pq.finished(&pool) {
            let bucket = pq.dequeue_ready_set(&pool);
            pq.apply_update_priority(&pool, &bucket, &MinPlusWeight);
        }
        pq.priorities()
    }

    fn diamond() -> CsrGraph {
        GraphBuilder::new(5)
            .edge(0, 1, 5)
            .edge(0, 2, 1)
            .edge(2, 1, 1)
            .edge(1, 3, 2)
            .edge(2, 3, 10)
            .build()
    }

    #[test]
    fn figure_3_loop_computes_sssp() {
        let g = diamond();
        assert_eq!(sssp_via_facade(&g, 0, 1)[..4], [0, 2, 1, 4]);
        assert_eq!(sssp_via_facade(&g, 0, 4)[..4], [0, 2, 1, 4]);
    }

    #[test]
    fn finished_on_empty_queue() {
        let g = diamond();
        let pool = Pool::new(1);
        let mut pq = PriorityQueue::new(
            &g,
            BucketOrder::Increasing,
            vec![NULL_PRIORITY; 5],
            &[],
            &Schedule::lazy(1),
        );
        assert!(pq.finished(&pool));
        assert!(pq.dequeue_ready_set(&pool).is_empty());
    }

    #[test]
    fn finished_vertex_tracks_processing() {
        let g = GraphBuilder::new(3).edge(0, 1, 1).edge(1, 2, 1).build();
        let pool = Pool::new(1);
        let mut initial = vec![NULL_PRIORITY; 3];
        initial[0] = 0;
        let mut pq = PriorityQueue::new(
            &g,
            BucketOrder::Increasing,
            initial,
            &[0],
            &Schedule::lazy(1),
        );
        let b0 = pq.dequeue_ready_set(&pool);
        assert_eq!(b0.as_slice(), &[0]);
        assert_eq!(pq.get_current_priority(), 0);
        assert!(!pq.finished_vertex(0)); // being processed now
        pq.apply_update_priority(&pool, &b0, &MinPlusWeight);
        let b1 = pq.dequeue_ready_set(&pool);
        assert_eq!(b1.as_slice(), &[1]);
        assert!(pq.finished_vertex(0));
        assert!(!pq.finished_vertex(2)); // still null
    }

    #[test]
    fn manual_updates_between_dequeues_are_buffered() {
        let g = GraphBuilder::new(3).build();
        let pool = Pool::new(1);
        let mut pq = PriorityQueue::new(
            &g,
            BucketOrder::Increasing,
            vec![NULL_PRIORITY; 3],
            &[],
            &Schedule::lazy(1),
        );
        assert!(pq.finished(&pool));
        pq.update_priority_min(2, 7);
        pq.update_priority_min(2, 6); // improves, still one pending entry
        assert!(!pq.finished(&pool));
        let b = pq.dequeue_ready_set(&pool);
        assert_eq!(b.as_slice(), &[2]);
        assert_eq!(pq.get_current_priority(), 6);
    }

    #[test]
    fn higher_first_order_dequeues_descending() {
        let g = GraphBuilder::new(3).build();
        let pool = Pool::new(1);
        let mut pq = PriorityQueue::new(
            &g,
            BucketOrder::Decreasing,
            vec![10, 30, 20],
            &[0, 1, 2],
            &Schedule::lazy(1),
        );
        let mut order = Vec::new();
        while !pq.finished(&pool) {
            let b = pq.dequeue_ready_set(&pool);
            order.extend_from_slice(b.as_slice());
        }
        assert_eq!(order, vec![1, 2, 0]);
    }
}
