//! User-defined edge functions and the priority operators they may call.
//!
//! An [`OrderedUdf`] is the body of the paper's `updateEdge` function
//! (Figure 3 lines 7–10): it sees one edge and may update priorities through
//! a [`PriorityOps`] handle. The handle hides everything the compiler would
//! otherwise generate — atomics, deduplication, and bucket insertion — and
//! each engine supplies its own implementation (eager handles push straight
//! into thread-local bins; lazy handles record into the round's buffer).

use priograph_graph::{VertexId, Weight};

/// Priority operators available inside UDFs (paper Table 1).
///
/// Object safe so that closure-based UDFs ([`FnUdf`]) can take `&dyn
/// PriorityOps`; engine code uses static dispatch.
pub trait PriorityOps {
    /// Priority value of the bucket being processed
    /// (`pq.getCurrentPriority()`).
    fn current_priority(&self) -> i64;

    /// Reads `v`'s current priority.
    fn get(&self, v: VertexId) -> i64;

    /// `pq.updatePriorityMin(v, new_val)`: lowers `v`'s priority to
    /// `new_val` if smaller, scheduling `v` into its new bucket on success.
    fn update_min(&self, v: VertexId, new_val: i64);

    /// `pq.updatePriorityMax(v, new_val)`: raises `v`'s priority to
    /// `new_val` if larger.
    fn update_max(&self, v: VertexId, new_val: i64);

    /// `pq.updatePrioritySum(v, delta, threshold)`: adds `delta`, clamped so
    /// a decreasing priority never crosses `threshold`; no-op on vertices
    /// already at or below the threshold (finalized).
    fn update_sum(&self, v: VertexId, delta: i64, threshold: i64);
}

/// A user-defined function applied to every edge leaving the current bucket
/// (the argument of `applyUpdatePriority`).
pub trait OrderedUdf: Sync {
    /// Processes one edge. `src` comes from the dequeued bucket.
    fn apply<P: PriorityOps>(&self, src: VertexId, dst: VertexId, weight: Weight, pq: &P);

    /// `Some(c)` if this UDF is *exactly* one `updatePrioritySum(dst, c,
    /// current_priority)` — the property the compiler's constant-sum
    /// analysis must prove before selecting the histogram strategy
    /// (paper Figure 10).
    fn constant_sum(&self) -> Option<i64> {
        None
    }

    /// True if a vertex must be processed at most once over the whole run
    /// (k-core peels each vertex exactly once; SSSP may legitimately
    /// reprocess a vertex whose distance improved within a bucket).
    fn needs_final_dedup(&self) -> bool {
        false
    }
}

/// The Δ-stepping relaxation: `updatePriorityMin(dst, pri[src] + weight)`.
///
/// This single UDF implements SSSP, wBFS, and PPSP (the latter two differ
/// only in Δ and the stop condition).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinPlusWeight;

impl OrderedUdf for MinPlusWeight {
    #[inline]
    fn apply<P: PriorityOps>(&self, src: VertexId, dst: VertexId, weight: Weight, pq: &P) {
        let new_dist = pq.get(src) + i64::from(weight);
        pq.update_min(dst, new_dist);
    }
}

/// The k-core peel: decrement the neighbor's degree, floored at the current
/// core value (Figure 10 top: `pq.updatePrioritySum(dst, -1, k)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DecrementToFloor;

impl OrderedUdf for DecrementToFloor {
    #[inline]
    fn apply<P: PriorityOps>(&self, _src: VertexId, dst: VertexId, _weight: Weight, pq: &P) {
        let k = pq.current_priority();
        pq.update_sum(dst, -1, k);
    }

    fn constant_sum(&self) -> Option<i64> {
        Some(-1)
    }

    fn needs_final_dedup(&self) -> bool {
        true
    }
}

/// Adapts a closure taking `&dyn PriorityOps` into an [`OrderedUdf`].
///
/// Convenient for examples and one-off algorithms; named structs with
/// inherent `apply` stay fully monomorphized and are preferred in hot paths.
///
/// # Example
///
/// ```
/// use priograph_core::udf::{FnUdf, OrderedUdf, PriorityOps};
///
/// let udf = FnUdf::new(|src, dst, w, pq: &dyn PriorityOps| {
///     pq.update_min(dst, pq.get(src) + i64::from(w));
/// });
/// # let _ = udf;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnUdf<F> {
    f: F,
    constant_sum: Option<i64>,
    needs_final_dedup: bool,
}

impl<F> FnUdf<F>
where
    F: Fn(VertexId, VertexId, Weight, &dyn PriorityOps) + Sync,
{
    /// Wraps `f` as a UDF with no special properties.
    pub fn new(f: F) -> Self {
        FnUdf {
            f,
            constant_sum: None,
            needs_final_dedup: false,
        }
    }

    /// Declares the UDF a constant-sum update (enables `lazy_constant_sum`).
    pub fn with_constant_sum(mut self, c: i64) -> Self {
        self.constant_sum = Some(c);
        self
    }

    /// Declares that vertices are processed at most once.
    pub fn with_final_dedup(mut self) -> Self {
        self.needs_final_dedup = true;
        self
    }
}

impl<F> OrderedUdf for FnUdf<F>
where
    F: Fn(VertexId, VertexId, Weight, &dyn PriorityOps) + Sync,
{
    #[inline]
    fn apply<P: PriorityOps>(&self, src: VertexId, dst: VertexId, weight: Weight, pq: &P) {
        (self.f)(src, dst, weight, &DynShim(pq));
    }

    fn constant_sum(&self) -> Option<i64> {
        self.constant_sum
    }

    fn needs_final_dedup(&self) -> bool {
        self.needs_final_dedup
    }
}

/// Forwards a concrete context as `&dyn PriorityOps` without requiring
/// `P: Sized + 'static` coercions at every call site.
struct DynShim<'a, P: PriorityOps>(&'a P);

impl<P: PriorityOps> PriorityOps for DynShim<'_, P> {
    fn current_priority(&self) -> i64 {
        self.0.current_priority()
    }
    fn get(&self, v: VertexId) -> i64 {
        self.0.get(v)
    }
    fn update_min(&self, v: VertexId, new_val: i64) {
        self.0.update_min(v, new_val)
    }
    fn update_max(&self, v: VertexId, new_val: i64) {
        self.0.update_max(v, new_val)
    }
    fn update_sum(&self, v: VertexId, delta: i64, threshold: i64) {
        self.0.update_sum(v, delta, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Records every operator call for inspection.
    #[derive(Default)]
    struct Recorder {
        calls: RefCell<Vec<String>>,
    }

    impl PriorityOps for Recorder {
        fn current_priority(&self) -> i64 {
            7
        }
        fn get(&self, v: VertexId) -> i64 {
            i64::from(v) * 10
        }
        fn update_min(&self, v: VertexId, new_val: i64) {
            self.calls.borrow_mut().push(format!("min({v},{new_val})"));
        }
        fn update_max(&self, v: VertexId, new_val: i64) {
            self.calls.borrow_mut().push(format!("max({v},{new_val})"));
        }
        fn update_sum(&self, v: VertexId, delta: i64, threshold: i64) {
            self.calls
                .borrow_mut()
                .push(format!("sum({v},{delta},{threshold})"));
        }
    }

    #[test]
    fn min_plus_weight_relaxes() {
        let rec = Recorder::default();
        MinPlusWeight.apply(2, 5, 3, &rec);
        assert_eq!(rec.calls.into_inner(), vec!["min(5,23)"]);
        assert_eq!(MinPlusWeight.constant_sum(), None);
        assert!(!MinPlusWeight.needs_final_dedup());
    }

    #[test]
    fn decrement_to_floor_uses_current_priority() {
        let rec = Recorder::default();
        DecrementToFloor.apply(0, 4, 1, &rec);
        assert_eq!(rec.calls.into_inner(), vec!["sum(4,-1,7)"]);
        assert_eq!(DecrementToFloor.constant_sum(), Some(-1));
        assert!(DecrementToFloor.needs_final_dedup());
    }

    #[test]
    fn fn_udf_forwards_through_dyn() {
        let udf = FnUdf::new(|src, dst, w, pq: &dyn PriorityOps| {
            pq.update_max(dst, pq.get(src) + i64::from(w) + pq.current_priority());
        });
        let rec = Recorder::default();
        udf.apply(1, 2, 3, &rec);
        assert_eq!(rec.calls.into_inner(), vec!["max(2,20)"]);
    }

    #[test]
    fn fn_udf_property_declarations() {
        let udf = FnUdf::new(|_, _, _, _: &dyn PriorityOps| {})
            .with_constant_sum(-1)
            .with_final_dedup();
        assert_eq!(udf.constant_sum(), Some(-1));
        assert!(udf.needs_final_dedup());
    }
}
