//! Problem descriptions: the algorithmic half of a priority-queue
//! construction (paper Table 1's `new priority_queue(...)` arguments).

use crate::stats::ExecStats;
use priograph_buckets::BucketOrder;
use priograph_graph::{CsrGraph, VertexId};

/// Initial priority assignment (the `priority_vector` argument).
#[derive(Debug, Clone)]
pub enum InitPriorities {
    /// Every vertex starts at the same value (e.g. `INT_MAX` → [`crate::prelude::NULL_PRIORITY`]).
    Constant(i64),
    /// Explicit per-vertex values (e.g. degrees for k-core).
    PerVertex(Vec<i64>),
}

/// Which vertices enter the bucket structure initially.
#[derive(Debug, Clone)]
pub enum Seeds {
    /// An explicit list (SSSP: the start vertex).
    Vertices(Vec<VertexId>),
    /// Every vertex with a non-null priority (k-core: all of them).
    AllFinite,
}

/// An ordered-processing problem: graph + priority-queue construction
/// parameters. Pair it with a [`crate::schedule::Schedule`] and an
/// [`crate::udf::OrderedUdf`] to run.
#[derive(Debug, Clone)]
pub struct OrderedProblem<'g> {
    /// The graph to traverse.
    pub graph: &'g CsrGraph,
    /// Lower- or higher-priority-first execution.
    pub order: BucketOrder,
    /// Whether priority coarsening (Δ > 1) is legal for this algorithm.
    pub coarsening_allowed: bool,
    /// Initial priorities.
    pub init: InitPriorities,
    /// Initially scheduled vertices.
    pub seeds: Seeds,
}

impl<'g> OrderedProblem<'g> {
    /// A `lower_first` problem (SSSP family, k-core) with null initial
    /// priorities and no seeds; configure with the builder methods.
    pub fn lower_first(graph: &'g CsrGraph) -> Self {
        OrderedProblem {
            graph,
            order: BucketOrder::Increasing,
            coarsening_allowed: false,
            init: InitPriorities::Constant(priograph_buckets::NULL_PRIORITY),
            seeds: Seeds::Vertices(Vec::new()),
        }
    }

    /// A `higher_first` problem (SetCover).
    pub fn higher_first(graph: &'g CsrGraph) -> Self {
        OrderedProblem {
            order: BucketOrder::Decreasing,
            ..OrderedProblem::lower_first(graph)
        }
    }

    /// Permits priority coarsening (Δ > 1 in the schedule).
    pub fn allow_coarsening(mut self) -> Self {
        self.coarsening_allowed = true;
        self
    }

    /// Sets every initial priority to `value`.
    pub fn init_constant(mut self, value: i64) -> Self {
        self.init = InitPriorities::Constant(value);
        self
    }

    /// Sets explicit per-vertex initial priorities.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the vertex count.
    pub fn init_per_vertex(mut self, values: Vec<i64>) -> Self {
        assert_eq!(
            values.len(),
            self.graph.num_vertices(),
            "one priority per vertex"
        );
        self.init = InitPriorities::PerVertex(values);
        self
    }

    /// Seeds `vertex` with `priority` (overriding its initial value) and
    /// schedules it. SSSP calls `seed(start, 0)`.
    pub fn seed(mut self, vertex: VertexId, priority: i64) -> Self {
        let n = self.graph.num_vertices();
        assert!((vertex as usize) < n, "seed vertex out of range");
        match &mut self.init {
            InitPriorities::PerVertex(values) => values[vertex as usize] = priority,
            InitPriorities::Constant(c) => {
                let mut values = vec![*c; n];
                values[vertex as usize] = priority;
                self.init = InitPriorities::PerVertex(values);
            }
        }
        match &mut self.seeds {
            Seeds::Vertices(list) => list.push(vertex),
            Seeds::AllFinite => {}
        }
        self
    }

    /// Schedules every vertex whose initial priority is non-null (k-core).
    pub fn seed_all_finite(mut self) -> Self {
        self.seeds = Seeds::AllFinite;
        self
    }

    /// Materializes the initial priority vector.
    pub fn initial_priorities(&self) -> Vec<i64> {
        match &self.init {
            InitPriorities::Constant(c) => vec![*c; self.graph.num_vertices()],
            InitPriorities::PerVertex(values) => values.clone(),
        }
    }

    /// Materializes the seed list against `priorities`.
    pub fn seed_vertices(&self, priorities: &[i64]) -> Vec<VertexId> {
        match &self.seeds {
            Seeds::Vertices(list) => list.clone(),
            Seeds::AllFinite => priorities
                .iter()
                .enumerate()
                .filter(|(_, &p)| p.abs() < priograph_buckets::NULL_PRIORITY)
                .map(|(v, _)| v as VertexId)
                .collect(),
        }
    }
}

/// The result of an ordered execution.
#[derive(Debug, Clone)]
pub struct OrderedOutput {
    /// Final per-vertex priorities (distances for SSSP, coreness for
    /// k-core, …).
    pub priorities: Vec<i64>,
    /// Execution counters.
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use priograph_buckets::NULL_PRIORITY;
    use priograph_graph::gen::GraphGen;

    #[test]
    fn seed_overrides_priority_and_schedules() {
        let g = GraphGen::path(4).build();
        let p = OrderedProblem::lower_first(&g)
            .init_constant(NULL_PRIORITY)
            .seed(2, 0);
        let pri = p.initial_priorities();
        assert_eq!(pri[2], 0);
        assert_eq!(pri[0], NULL_PRIORITY);
        assert_eq!(p.seed_vertices(&pri), vec![2]);
    }

    #[test]
    fn seed_all_finite_selects_non_null() {
        let g = GraphGen::path(3).build();
        let p = OrderedProblem::lower_first(&g)
            .init_per_vertex(vec![1, NULL_PRIORITY, 5])
            .seed_all_finite();
        let pri = p.initial_priorities();
        assert_eq!(p.seed_vertices(&pri), vec![0, 2]);
    }

    #[test]
    fn higher_first_flips_order() {
        let g = GraphGen::path(2).build();
        assert_eq!(
            OrderedProblem::higher_first(&g).order,
            BucketOrder::Decreasing
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn seed_out_of_range_panics() {
        let g = GraphGen::path(2).build();
        let _ = OrderedProblem::lower_first(&g).seed(5, 0);
    }

    #[test]
    #[should_panic(expected = "one priority per vertex")]
    fn wrong_init_length_panics() {
        let g = GraphGen::path(3).build();
        let _ = OrderedProblem::lower_first(&g).init_per_vertex(vec![0; 2]);
    }
}
