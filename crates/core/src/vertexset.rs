//! Vertex subsets (frontiers) in sparse and dense form.
//!
//! GraphIt frontiers switch representation with the traversal direction:
//! sparse vertex lists for push, dense boolean maps for pull (paper Figure 9
//! (a) vs (b): `frontier.vert_array` vs `frontier->bool_map_`).

use priograph_graph::VertexId;

/// A set of active vertices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexSubset {
    vertices: Vec<VertexId>,
}

impl VertexSubset {
    /// An empty subset.
    pub fn new() -> Self {
        VertexSubset::default()
    }

    /// Wraps a sparse vertex list.
    pub fn from_vertices(vertices: Vec<VertexId>) -> Self {
        VertexSubset { vertices }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Sparse view.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Iterates over the active vertices.
    pub fn iter(&self) -> std::slice::Iter<'_, VertexId> {
        self.vertices.iter()
    }

    /// Consumes the subset, returning the sparse list.
    pub fn into_vec(self) -> Vec<VertexId> {
        self.vertices
    }

    /// Dense boolean map over `n` vertices (the pull-direction layout).
    ///
    /// # Panics
    ///
    /// Panics if a member is out of range.
    pub fn to_dense(&self, n: usize) -> Vec<bool> {
        let mut dense = vec![false; n];
        for &v in &self.vertices {
            dense[v as usize] = true;
        }
        dense
    }

    /// Builds a subset from a dense boolean map.
    pub fn from_dense(dense: &[bool]) -> Self {
        VertexSubset {
            vertices: dense
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i as VertexId))
                .collect(),
        }
    }
}

impl FromIterator<VertexId> for VertexSubset {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        VertexSubset {
            vertices: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a VertexSubset {
    type Item = &'a VertexId;
    type IntoIter = std::slice::Iter<'a, VertexId>;

    fn into_iter(self) -> Self::IntoIter {
        self.vertices.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_round_trip() {
        let s = VertexSubset::from_vertices(vec![3, 1, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.as_slice(), &[3, 1, 4]);
        assert_eq!(s.clone().into_vec(), vec![3, 1, 4]);
    }

    #[test]
    fn dense_round_trip() {
        let s: VertexSubset = [0u32, 2, 5].into_iter().collect();
        let dense = s.to_dense(6);
        assert_eq!(dense, vec![true, false, true, false, false, true]);
        let back = VertexSubset::from_dense(&dense);
        assert_eq!(back.as_slice(), &[0, 2, 5]);
    }

    #[test]
    fn empty_subset() {
        let s = VertexSubset::new();
        assert!(s.is_empty());
        assert_eq!(s.to_dense(3), vec![false; 3]);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn borrowing_iteration() {
        let s = VertexSubset::from_vertices(vec![7, 8]);
        let sum: u32 = (&s).into_iter().sum();
        assert_eq!(sum, 15);
    }
}
