//! The scheduling language (paper Table 2).
//!
//! A [`Schedule`] describes *how* an ordered algorithm executes without
//! touching its specification. The builder methods carry the names of the
//! paper's scheduling functions:
//!
//! | Paper (Table 2) | Here |
//! |---|---|
//! | `configApplyPriorityUpdate(label, s)` | [`Schedule::config_apply_priority_update`] |
//! | `configApplyPriorityUpdateDelta(label, Δ)` | [`Schedule::config_apply_priority_update_delta`] |
//! | `configBucketFusionThreshold(label, t)` | [`Schedule::config_bucket_fusion_threshold`] |
//! | `configNumBuckets(label, k)` | [`Schedule::config_num_buckets`] |
//! | `configApplyDirection(label, d)` | [`Schedule::config_apply_direction`] |
//! | `configApplyParallelization(label, p)` | [`Schedule::config_apply_parallelization`] |
//!
//! (Labels are unnecessary in the embedded setting: a schedule configures the
//! single `applyUpdatePriority` operator it is passed alongside.)

use std::fmt;

/// Bucket update strategy (the `configApplyPriorityUpdate` options; paper
/// Table 2 lists `eager_with_fusion`, `eager_no_fusion`, `lazy_constant_sum`,
/// and `lazy`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PriorityUpdateStrategy {
    /// Eager thread-local bucket updates with the bucket fusion optimization
    /// (§3.3) — the paper's default.
    EagerWithFusion,
    /// Eager thread-local bucket updates, one global sync per round (§3.2).
    EagerNoFusion,
    /// Lazy buffered bucket updates with a bulk re-bucketing pass (§3.1).
    Lazy,
    /// Lazy updates reduced with a histogram, for UDFs that change priorities
    /// by a fixed constant (§5.1, Figure 10).
    LazyConstantSum,
}

impl PriorityUpdateStrategy {
    /// The scheduling-language spelling (`"eager_with_fusion"` etc.).
    pub fn as_str(&self) -> &'static str {
        match self {
            PriorityUpdateStrategy::EagerWithFusion => "eager_with_fusion",
            PriorityUpdateStrategy::EagerNoFusion => "eager_no_fusion",
            PriorityUpdateStrategy::Lazy => "lazy",
            PriorityUpdateStrategy::LazyConstantSum => "lazy_constant_sum",
        }
    }
}

impl fmt::Display for PriorityUpdateStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Edge traversal direction for the lazy engine (`configApplyDirection`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Sparse frontier, push along out-edges (Figure 9(a)); the default.
    SparsePush,
    /// Dense frontier, pull along in-edges — destinations update themselves,
    /// so no atomics are needed (Figure 9(b)).
    DensePull,
}

impl Direction {
    /// The scheduling-language spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::SparsePush => "SparsePush",
            Direction::DensePull => "DensePull",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Load balancing for vertex loops (`configApplyParallelization`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Parallelization {
    /// OpenMP `schedule(dynamic, grain)`-style chunk claiming.
    DynamicVertex {
        /// Chunk size.
        grain: usize,
    },
    /// One contiguous block per thread (`schedule(static)`).
    StaticVertex,
}

impl Parallelization {
    /// The scheduling-language spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Parallelization::DynamicVertex { .. } => "dynamic-vertex-parallel",
            Parallelization::StaticVertex => "static-vertex-parallel",
        }
    }
}

/// Default bucket fusion threshold: local buckets smaller than this are
/// drained in place instead of being redistributed (§3.3 notes the threshold
/// avoids straggler threads).
pub const DEFAULT_FUSION_THRESHOLD: usize = 1000;

/// A complete optimization strategy for one `applyUpdatePriority` operator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Bucket update strategy.
    pub priority_update: PriorityUpdateStrategy,
    /// Priority coarsening factor Δ (≥ 1; 1 disables coarsening).
    pub delta: i64,
    /// Bucket fusion threshold (only meaningful with
    /// [`PriorityUpdateStrategy::EagerWithFusion`]).
    pub fusion_threshold: usize,
    /// Number of materialized buckets for the lazy strategies.
    pub num_open_buckets: usize,
    /// Traversal direction (lazy strategies only; eager is push-based).
    pub direction: Direction,
    /// Vertex-loop load balancing.
    pub parallelization: Parallelization,
}

impl Default for Schedule {
    /// The paper's defaults: `eager_with_fusion`, `SparsePush`,
    /// dynamic vertex parallelism (Table 2 bolds these), Δ = 1.
    fn default() -> Self {
        Schedule {
            priority_update: PriorityUpdateStrategy::EagerWithFusion,
            delta: 1,
            fusion_threshold: DEFAULT_FUSION_THRESHOLD,
            num_open_buckets: priograph_buckets::DEFAULT_OPEN_BUCKETS,
            direction: Direction::SparsePush,
            parallelization: Parallelization::DynamicVertex {
                grain: priograph_parallel::DEFAULT_GRAIN,
            },
        }
    }
}

impl Schedule {
    /// Eager updates with bucket fusion and coarsening factor `delta`.
    pub fn eager_with_fusion(delta: i64) -> Self {
        Schedule {
            priority_update: PriorityUpdateStrategy::EagerWithFusion,
            delta,
            ..Schedule::default()
        }
    }

    /// Eager updates without fusion.
    pub fn eager(delta: i64) -> Self {
        Schedule {
            priority_update: PriorityUpdateStrategy::EagerNoFusion,
            delta,
            ..Schedule::default()
        }
    }

    /// Lazy buffered updates.
    pub fn lazy(delta: i64) -> Self {
        Schedule {
            priority_update: PriorityUpdateStrategy::Lazy,
            delta,
            ..Schedule::default()
        }
    }

    /// Lazy updates with the constant-sum histogram reduction (Δ is forced
    /// to 1: constant-sum algorithms such as k-core forbid coarsening).
    pub fn lazy_constant_sum() -> Self {
        Schedule {
            priority_update: PriorityUpdateStrategy::LazyConstantSum,
            delta: 1,
            ..Schedule::default()
        }
    }

    /// `configApplyPriorityUpdate`: selects the bucket update strategy.
    pub fn config_apply_priority_update(mut self, strategy: PriorityUpdateStrategy) -> Self {
        self.priority_update = strategy;
        self
    }

    /// `configApplyPriorityUpdateDelta`: sets the coarsening factor Δ.
    pub fn config_apply_priority_update_delta(mut self, delta: i64) -> Self {
        self.delta = delta;
        self
    }

    /// `configBucketFusionThreshold`: sets the fusion threshold.
    pub fn config_bucket_fusion_threshold(mut self, threshold: usize) -> Self {
        self.fusion_threshold = threshold;
        self
    }

    /// `configNumBuckets`: sets the number of materialized lazy buckets.
    pub fn config_num_buckets(mut self, num: usize) -> Self {
        self.num_open_buckets = num;
        self
    }

    /// `configApplyDirection`: sets the traversal direction.
    pub fn config_apply_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// `configApplyParallelization`: sets the load-balancing strategy.
    pub fn config_apply_parallelization(mut self, parallelization: Parallelization) -> Self {
        self.parallelization = parallelization;
        self
    }

    /// True for the two eager strategies.
    pub fn is_eager(&self) -> bool {
        matches!(
            self.priority_update,
            PriorityUpdateStrategy::EagerWithFusion | PriorityUpdateStrategy::EagerNoFusion
        )
    }

    /// Loop grain size implied by the parallelization choice.
    pub fn grain(&self) -> usize {
        match self.parallelization {
            Parallelization::DynamicVertex { grain } => grain,
            Parallelization::StaticVertex => priograph_parallel::DEFAULT_GRAIN,
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "configApplyPriorityUpdate(\"{}\") -> configApplyPriorityUpdateDelta({}) -> \
             configApplyDirection(\"{}\") -> configApplyParallelization(\"{}\")",
            self.priority_update,
            self.delta,
            self.direction,
            self.parallelization.as_str()
        )?;
        if self.priority_update == PriorityUpdateStrategy::EagerWithFusion {
            write!(
                f,
                " -> configBucketFusionThreshold({})",
                self.fusion_threshold
            )?;
        }
        Ok(())
    }
}

/// Why a schedule cannot be applied to a given problem — the runtime analogue
/// of the compile-time checks in §5 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Δ > 1 requested but the priority queue was constructed without
    /// priority coarsening (k-core, SetCover).
    CoarseningNotAllowed {
        /// The requested Δ.
        delta: i64,
    },
    /// The eager engine only supports `lower_first` execution over
    /// non-negative priorities (GAPBS-style bins are an array).
    EagerRequiresLowerFirst,
    /// `lazy_constant_sum` was requested but the UDF is not a constant-sum
    /// priority update (the analysis of Figure 10 failed).
    ConstantSumRequired,
    /// `DensePull` traversal is only generated for the lazy strategies.
    DensePullRequiresLazy,
    /// Δ must be at least 1.
    InvalidDelta {
        /// The offending value.
        delta: i64,
    },
    /// The fusion threshold must be positive.
    InvalidFusionThreshold,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::CoarseningNotAllowed { delta } => write!(
                f,
                "priority coarsening (delta = {delta}) requested but the problem forbids it"
            ),
            ScheduleError::EagerRequiresLowerFirst => {
                write!(
                    f,
                    "eager bucket updates require lower_first priority ordering"
                )
            }
            ScheduleError::ConstantSumRequired => write!(
                f,
                "lazy_constant_sum requires a UDF proven to be a constant-sum priority update"
            ),
            ScheduleError::DensePullRequiresLazy => {
                write!(
                    f,
                    "DensePull traversal is only available with lazy bucket updates"
                )
            }
            ScheduleError::InvalidDelta { delta } => {
                write!(f, "coarsening factor must be >= 1, got {delta}")
            }
            ScheduleError::InvalidFusionThreshold => {
                write!(f, "bucket fusion threshold must be positive")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_bold_options() {
        let s = Schedule::default();
        assert_eq!(s.priority_update, PriorityUpdateStrategy::EagerWithFusion);
        assert_eq!(s.direction, Direction::SparsePush);
        assert!(matches!(
            s.parallelization,
            Parallelization::DynamicVertex { grain: 64 }
        ));
        assert_eq!(s.delta, 1);
    }

    #[test]
    fn builders_set_strategy_and_delta() {
        assert_eq!(
            Schedule::eager(16).priority_update,
            PriorityUpdateStrategy::EagerNoFusion
        );
        assert_eq!(Schedule::eager(16).delta, 16);
        assert_eq!(
            Schedule::lazy(4).priority_update,
            PriorityUpdateStrategy::Lazy
        );
        let cs = Schedule::lazy_constant_sum();
        assert_eq!(cs.priority_update, PriorityUpdateStrategy::LazyConstantSum);
        assert_eq!(cs.delta, 1);
    }

    #[test]
    fn chained_config_mirrors_figure_8() {
        // program->configApplyPriorityUpdate("s1", "lazy")
        //        ->configApplyPriorityUpdateDelta("s1", "4")
        //        ->configApplyDirection("s1", "SparsePush")
        //        ->configApplyParallelization("s1","dynamic-vertex-parallel");
        let s = Schedule::default()
            .config_apply_priority_update(PriorityUpdateStrategy::Lazy)
            .config_apply_priority_update_delta(4)
            .config_apply_direction(Direction::SparsePush)
            .config_apply_parallelization(Parallelization::DynamicVertex { grain: 64 });
        assert_eq!(s.priority_update, PriorityUpdateStrategy::Lazy);
        assert_eq!(s.delta, 4);
        assert!(!s.is_eager());
    }

    #[test]
    fn display_is_schedule_language_like() {
        let text = Schedule::eager_with_fusion(8).to_string();
        assert!(text.contains("eager_with_fusion"));
        assert!(text.contains("configBucketFusionThreshold"));
        let lazy = Schedule::lazy(2).to_string();
        assert!(!lazy.contains("FusionThreshold"));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ScheduleError::CoarseningNotAllowed { delta: 8 };
        assert!(e.to_string().contains("delta = 8"));
        assert!(ScheduleError::ConstantSumRequired
            .to_string()
            .contains("constant-sum"));
    }

    #[test]
    fn grain_falls_back_for_static() {
        assert_eq!(Schedule::default().grain(), 64);
        let s = Schedule::default().config_apply_parallelization(Parallelization::StaticVertex);
        assert_eq!(s.grain(), 64);
    }
}
