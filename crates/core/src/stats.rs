//! Execution statistics collected by the engines.
//!
//! The paper's evaluation reports round counts next to running times
//! (Table 6: bucket fusion cuts SSSP on RoadUSA from 48,407 rounds to 1,069)
//! and insert counts explain the eager/lazy tradeoff (Table 7). Engines
//! therefore count both.

use std::time::Duration;

/// Counters for one ordered execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Globally synchronized rounds (each costs at least one barrier /
    /// bulk-synchronous step). Bucket fusion specifically reduces this.
    pub rounds: u64,
    /// Distinct buckets processed (a bucket may span many rounds).
    pub buckets: u64,
    /// Rounds executed locally by bucket fusion without global sync.
    pub fused_rounds: u64,
    /// Edge relaxations (UDF applications).
    pub relaxations: u64,
    /// Vertex insertions into bucket structures (lazy: buffered single
    /// insertions; eager: thread-local bin pushes).
    pub bucket_inserts: u64,
    /// Wall-clock time of the ordered loop.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Rounds including fused (work rounds, paper's "rounds" in Table 6 are
    /// the synchronized ones; fused rounds ran without a barrier).
    pub fn total_rounds(&self) -> u64 {
        self.rounds + self.fused_rounds
    }

    /// Milliseconds elapsed, for table printing.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_rounds_adds_fused() {
        let stats = ExecStats {
            rounds: 10,
            fused_rounds: 5,
            ..ExecStats::default()
        };
        assert_eq!(stats.total_rounds(), 15);
    }

    #[test]
    fn elapsed_ms_converts() {
        let stats = ExecStats {
            elapsed: Duration::from_millis(250),
            ..ExecStats::default()
        };
        assert!((stats.elapsed_ms() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_zeroed() {
        let stats = ExecStats::default();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.total_rounds(), 0);
    }
}
