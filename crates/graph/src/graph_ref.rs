//! [`GraphRef`]: a borrowed, `Copy` CSR view.
//!
//! [`CsrGraph`](crate::CsrGraph) owns (or maps — see
//! [`storage`](crate::snapshot::SnapshotView)) its arrays; `GraphRef` is the
//! storage-independent *view* of them: five slices and two scalars. Every
//! slice-level accessor on `CsrGraph` delegates here, so engines written
//! against either type traverse through exactly the same code, and code
//! that wants to be explicit about "I only read the CSR" (validators, the
//! snapshot writer, custom kernels) can take a `GraphRef<'_>` and be handed
//! a view of an owned graph, a mapped snapshot, or a test fixture alike.

use crate::csr::{Edge, Point};
use crate::VertexId;

/// A borrowed compressed-sparse-row view: the read-only accessor surface of
/// [`CsrGraph`](crate::CsrGraph) over plain slices.
///
/// `Copy` (two words per array), so pass it by value. Obtain one with
/// [`CsrGraph::as_graph_ref`](crate::CsrGraph::as_graph_ref) or
/// [`SnapshotView::graph_ref`](crate::snapshot::SnapshotView::graph_ref).
///
/// # Example
///
/// ```
/// use priograph_graph::{GraphBuilder, GraphRef};
///
/// fn total_weight(g: GraphRef<'_>) -> i64 {
///     (0..g.num_vertices() as u32)
///         .flat_map(|v| g.out_edges(v))
///         .map(|e| e.weight as i64)
///         .sum()
/// }
///
/// let g = GraphBuilder::new(3).edge(0, 1, 4).edge(1, 2, 6).build();
/// assert_eq!(total_weight(g.as_graph_ref()), 10);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct GraphRef<'a> {
    num_vertices: usize,
    out_offsets: &'a [usize],
    out_edges: &'a [Edge],
    in_offsets: &'a [usize],
    in_edges: &'a [Edge],
    coords: Option<&'a [Point]>,
    symmetric: bool,
}

impl<'a> GraphRef<'a> {
    /// Assembles a view from raw CSR parts (crate-internal: the public ways
    /// in are `CsrGraph::as_graph_ref` and `SnapshotView::graph_ref`).
    ///
    /// Invariants (upheld by both constructors, asserted in debug builds):
    /// offset arrays have `num_vertices + 1` entries, are monotone, and span
    /// exactly the edge arrays.
    pub(crate) fn from_raw(
        num_vertices: usize,
        out_offsets: &'a [usize],
        out_edges: &'a [Edge],
        in_offsets: &'a [usize],
        in_edges: &'a [Edge],
        coords: Option<&'a [Point]>,
        symmetric: bool,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_vertices + 1);
        debug_assert_eq!(in_offsets.len(), num_vertices + 1);
        debug_assert_eq!(out_offsets.last(), Some(&out_edges.len()));
        debug_assert_eq!(in_offsets.last(), Some(&in_edges.len()));
        GraphRef {
            num_vertices,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            coords,
            symmetric,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(self) -> usize {
        self.out_edges.len()
    }

    /// True if the graph was built or marked as symmetric.
    #[inline]
    pub fn is_symmetric(self) -> bool {
        self.symmetric
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn out_degree(self, v: VertexId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(self, v: VertexId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Outgoing edges of `v`.
    #[inline]
    pub fn out_edges(self, v: VertexId) -> &'a [Edge] {
        let v = v as usize;
        &self.out_edges[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Incoming edges of `v` (the `dst` field holds the original source).
    #[inline]
    pub fn in_edges(self, v: VertexId) -> &'a [Edge] {
        let v = v as usize;
        &self.in_edges[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Vertex coordinates, if present.
    #[inline]
    pub fn coords(self) -> Option<&'a [Point]> {
        self.coords
    }

    /// Iterator over all vertex ids.
    pub fn vertices(self) -> std::ops::Range<VertexId> {
        0..self.num_vertices as VertexId
    }

    /// The full offset/edge arrays of one direction, for code that walks the
    /// CSR wholesale (the snapshot writer, validators).
    #[inline]
    pub fn out_arrays(self) -> (&'a [usize], &'a [Edge]) {
        (self.out_offsets, self.out_edges)
    }

    /// As [`GraphRef::out_arrays`], for the in-direction.
    #[inline]
    pub fn in_arrays(self) -> (&'a [usize], &'a [Edge]) {
        (self.in_offsets, self.in_edges)
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn view_agrees_with_owner() {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 2)
            .edge(0, 2, 5)
            .edge(1, 3, 1)
            .edge(2, 3, 1)
            .build();
        let r = g.as_graph_ref();
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.is_symmetric(), g.is_symmetric());
        assert_eq!(r.coords(), g.coords());
        for v in r.vertices() {
            assert_eq!(r.out_edges(v), g.out_edges(v));
            assert_eq!(r.in_edges(v), g.in_edges(v));
            assert_eq!(r.out_degree(v), g.out_degree(v));
            assert_eq!(r.in_degree(v), g.in_degree(v));
        }
        let (offsets, edges) = r.out_arrays();
        assert_eq!(offsets.len(), 5);
        assert_eq!(edges.len(), 4);
        let (in_offsets, in_edges) = r.in_arrays();
        assert_eq!(in_offsets.len(), 5);
        assert_eq!(in_edges.len(), 4);
    }

    #[test]
    fn view_is_copy_and_outlives_reslicing() {
        let g = GraphBuilder::new(2).edge(0, 1, 9).build();
        let r = g.as_graph_ref();
        let r2 = r; // Copy
        let edges = r.out_edges(0); // &'a [Edge] borrows the graph, not `r`
        assert_eq!(r2.out_edges(0), edges);
    }
}
