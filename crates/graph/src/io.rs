//! Graph serialization: whitespace edge lists and DIMACS shortest-path
//! formats (the RoadUSA dataset in the paper ships as DIMACS `.gr`/`.co`).

use crate::csr::{CsrGraph, Point};
use crate::{GraphBuilder, VertexId, Weight};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while parsing graph files.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "io error: {e}"),
            ParseGraphError::Malformed { line, reason } => {
                write!(f, "malformed input at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseGraphError {
    fn from(e: io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> ParseGraphError {
    ParseGraphError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parses a whitespace-separated edge list: one `src dst [weight]` triple per
/// line; `#` starts a comment. Vertices are 0-based; a missing weight is 1.
///
/// # Errors
///
/// Returns [`ParseGraphError::Malformed`] on syntax errors.
///
/// # Example
///
/// ```
/// use priograph_graph::io::parse_edge_list;
///
/// let g = parse_edge_list("# tiny\n0 1 5\n1 2\n").unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.out_edges(1)[0].weight, 1);
/// ```
pub fn parse_edge_list(text: &str) -> Result<CsrGraph, ParseGraphError> {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut max_v: u64 = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src: u64 = parts
            .next()
            .ok_or_else(|| malformed(line_no, "missing source"))?
            .parse()
            .map_err(|e| malformed(line_no, format!("bad source: {e}")))?;
        let dst: u64 = parts
            .next()
            .ok_or_else(|| malformed(line_no, "missing destination"))?
            .parse()
            .map_err(|e| malformed(line_no, format!("bad destination: {e}")))?;
        let weight: Weight = match parts.next() {
            Some(w) => w
                .parse()
                .map_err(|e| malformed(line_no, format!("bad weight: {e}")))?,
            None => 1,
        };
        if weight < 0 {
            return Err(malformed(line_no, "negative weight"));
        }
        max_v = max_v.max(src).max(dst);
        edges.push((src as VertexId, dst as VertexId, weight));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    };
    Ok(GraphBuilder::new(n).edges(edges).build())
}

/// Serializes a graph as an edge list (the inverse of [`parse_edge_list`]).
pub fn to_edge_list(graph: &CsrGraph) -> String {
    let mut out = String::new();
    for (s, d, w) in graph.edge_triples() {
        let _ = writeln!(out, "{s} {d} {w}");
    }
    out
}

/// Parses a DIMACS shortest-path `.gr` file (`p sp n m` header, `a u v w`
/// arcs, 1-based vertices), the format of the 9th DIMACS Implementation
/// Challenge road graphs used by the paper.
///
/// # Errors
///
/// Returns [`ParseGraphError::Malformed`] on syntax errors or arcs outside
/// the declared vertex count.
pub fn parse_dimacs_gr(text: &str) -> Result<CsrGraph, ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p sp ") {
            let mut parts = rest.split_whitespace();
            let nv: usize = parts
                .next()
                .ok_or_else(|| malformed(line_no, "missing vertex count"))?
                .parse()
                .map_err(|e| malformed(line_no, format!("bad vertex count: {e}")))?;
            n = Some(nv);
        } else if let Some(rest) = line.strip_prefix("a ") {
            let nv = n.ok_or_else(|| malformed(line_no, "arc before problem line"))?;
            let mut parts = rest.split_whitespace();
            let mut next_num = |what: &str| -> Result<i64, ParseGraphError> {
                parts
                    .next()
                    .ok_or_else(|| malformed(line_no, format!("missing {what}")))?
                    .parse()
                    .map_err(|e| malformed(line_no, format!("bad {what}: {e}")))
            };
            let u = next_num("source")?;
            let v = next_num("destination")?;
            let w = next_num("weight")?;
            if u < 1 || v < 1 || u as usize > nv || v as usize > nv {
                return Err(malformed(line_no, "vertex id out of declared range"));
            }
            if w < 0 {
                return Err(malformed(line_no, "negative weight"));
            }
            edges.push(((u - 1) as VertexId, (v - 1) as VertexId, w as Weight));
        } else {
            return Err(malformed(line_no, format!("unrecognized line {line:?}")));
        }
    }
    let n = n.ok_or_else(|| malformed(0, "missing problem line"))?;
    Ok(GraphBuilder::new(n).edges(edges).build())
}

/// Serializes a graph in DIMACS `.gr` form.
pub fn to_dimacs_gr(graph: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c priograph export");
    let _ = writeln!(out, "p sp {} {}", graph.num_vertices(), graph.num_edges());
    for (s, d, w) in graph.edge_triples() {
        let _ = writeln!(out, "a {} {} {}", s + 1, d + 1, w);
    }
    out
}

/// Parses DIMACS `.co` coordinates (`v id x y`, 1-based ids) for a graph with
/// `n` vertices. Missing vertices default to the origin.
///
/// # Errors
///
/// Returns [`ParseGraphError::Malformed`] on syntax errors or out-of-range ids.
pub fn parse_dimacs_co(text: &str, n: usize) -> Result<Vec<Point>, ParseGraphError> {
    let mut coords = vec![Point::default(); n];
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("v ") {
            let mut parts = rest.split_whitespace();
            let id: usize = parts
                .next()
                .ok_or_else(|| malformed(line_no, "missing id"))?
                .parse()
                .map_err(|e| malformed(line_no, format!("bad id: {e}")))?;
            if id < 1 || id > n {
                return Err(malformed(line_no, "vertex id out of range"));
            }
            let x: f64 = parts
                .next()
                .ok_or_else(|| malformed(line_no, "missing x"))?
                .parse()
                .map_err(|e| malformed(line_no, format!("bad x: {e}")))?;
            let y: f64 = parts
                .next()
                .ok_or_else(|| malformed(line_no, "missing y"))?
                .parse()
                .map_err(|e| malformed(line_no, format!("bad y: {e}")))?;
            coords[id - 1] = Point { x, y };
        } else {
            return Err(malformed(line_no, format!("unrecognized line {line:?}")));
        }
    }
    Ok(coords)
}

/// Loads a graph from a file, selecting the parser by extension
/// (`.gr` → DIMACS, anything else → edge list).
///
/// # Errors
///
/// Propagates IO and parse failures.
pub fn load_graph(path: impl AsRef<Path>) -> Result<CsrGraph, ParseGraphError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    if path.extension().is_some_and(|e| e == "gr") {
        parse_dimacs_gr(&text)
    } else {
        parse_edge_list(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let g = GraphBuilder::new(4)
            .edges(vec![(0, 1, 3), (1, 2, 4), (3, 0, 1)])
            .build();
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g.edge_triples(), g2.edge_triples());
    }

    #[test]
    fn edge_list_defaults_weight_and_skips_comments() {
        let g = parse_edge_list("# header\n\n0 1\n# mid\n1 0 9\n").unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_edges(0)[0].weight, 1);
        assert_eq!(g.out_edges(1)[0].weight, 9);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = parse_edge_list("0 x 1\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::Malformed { line: 1, .. }));
        let err = parse_edge_list("0 1 -2\n").unwrap_err();
        assert!(err.to_string().contains("negative"));
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = parse_edge_list("# nothing\n").unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = GraphBuilder::new(3)
            .edges(vec![(0, 1, 10), (1, 2, 20), (2, 0, 30)])
            .build();
        let text = to_dimacs_gr(&g);
        let g2 = parse_dimacs_gr(&text).unwrap();
        assert_eq!(g.edge_triples(), g2.edge_triples());
        assert_eq!(g2.num_vertices(), 3);
    }

    #[test]
    fn dimacs_rejects_out_of_range_and_missing_header() {
        assert!(parse_dimacs_gr("a 1 2 3\n").is_err());
        assert!(parse_dimacs_gr("p sp 2 1\na 1 3 5\n").is_err());
        assert!(parse_dimacs_gr("p sp 2 1\nq nonsense\n").is_err());
    }

    #[test]
    fn dimacs_coordinates_parse() {
        let coords = parse_dimacs_co("c x\nv 1 1.5 -2.0\nv 3 0.25 0.75\n", 3).unwrap();
        assert_eq!(coords[0], Point { x: 1.5, y: -2.0 });
        assert_eq!(coords[1], Point::default());
        assert_eq!(coords[2], Point { x: 0.25, y: 0.75 });
        assert!(parse_dimacs_co("v 4 0 0\n", 3).is_err());
    }

    #[test]
    fn load_graph_dispatches_on_extension() {
        let dir = std::env::temp_dir();
        let el = dir.join("priograph_io_test.el");
        let gr = dir.join("priograph_io_test.gr");
        fs::write(&el, "0 1 2\n").unwrap();
        fs::write(&gr, "p sp 2 1\na 1 2 2\n").unwrap();
        let a = load_graph(&el).unwrap();
        let b = load_graph(&gr).unwrap();
        assert_eq!(a.edge_triples(), b.edge_triples());
        let _ = fs::remove_file(el);
        let _ = fs::remove_file(gr);
    }
}
