//! Compressed sparse row graph storage.

use crate::graph_ref::GraphRef;
use crate::storage::Storage;
use crate::{VertexId, Weight};
use std::fmt;

/// A weighted directed edge endpoint as stored in CSR adjacency arrays.
///
/// Mirrors GAPBS's `WNode { v, weight }` (paper Figure 9 caption). The
/// layout is `#[repr(C)]` because the `PSNAPv2` snapshot format stores edge
/// arrays in exactly this shape and the zero-copy loader reinterprets the
/// mapped bytes in place (little-endian, asserted below).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Edge {
    /// Destination vertex.
    pub dst: VertexId,
    /// Non-negative edge weight.
    pub weight: Weight,
}

// The zero-copy snapshot loader reinterprets file sections as these types;
// a layout drift must fail the build, not corrupt graphs.
const _: () = assert!(std::mem::size_of::<Edge>() == 8 && std::mem::align_of::<Edge>() == 4);
const _: () = assert!(std::mem::size_of::<Point>() == 16 && std::mem::align_of::<Point>() == 8);

/// A planar coordinate attached to a vertex (longitude/latitude analogue),
/// used by the A\* heuristic (paper §6.1: road graphs "have the longitude and
/// latitude data for each vertex"). `#[repr(C)]` for the same zero-copy
/// snapshot reason as [`Edge`].
#[derive(Copy, Clone, Debug, PartialEq, Default)]
#[repr(C)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A weighted directed graph in compressed sparse row form, with both
/// out-edges (for push traversals) and in-edges (for pull traversals).
///
/// The arrays live in an internal storage type: either owned vectors (built graphs,
/// `PSNAPv1` loads) or borrowed sections of a shared read-only file mapping
/// (`PSNAPv2` loads through
/// [`SnapshotView`](crate::snapshot::SnapshotView)). Engines cannot tell the
/// difference — both deref to plain slices — and cloning a mapped graph is
/// O(1) (it bumps the mapping's refcount).
#[derive(Clone, Default)]
pub struct CsrGraph {
    pub(crate) num_vertices: usize,
    pub(crate) out_offsets: Storage<usize>,
    pub(crate) out_edges: Storage<Edge>,
    pub(crate) in_offsets: Storage<usize>,
    pub(crate) in_edges: Storage<Edge>,
    pub(crate) coords: Option<Storage<Point>>,
    pub(crate) symmetric: bool,
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.out_edges.len())
            .field("symmetric", &self.symmetric)
            .field("has_coords", &self.coords.is_some())
            .finish()
    }
}

impl CsrGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out_edges.len()
    }

    /// True if the graph was built or marked as symmetric (every edge has a
    /// reverse twin with equal weight).
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Borrowed CSR view of this graph: the same accessor surface as
    /// [`CsrGraph`] over plain slices, `Copy`, and independent of how the
    /// arrays are owned (see [`GraphRef`]). The slice-level accessors below
    /// all delegate here, so there is exactly one indexing implementation.
    #[inline]
    pub fn as_graph_ref(&self) -> GraphRef<'_> {
        GraphRef::from_raw(
            self.num_vertices,
            &self.out_offsets,
            &self.out_edges,
            &self.in_offsets,
            &self.in_edges,
            self.coords.as_deref(),
            self.symmetric,
        )
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.as_graph_ref().out_degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.as_graph_ref().in_degree(v)
    }

    /// Outgoing edges of `v` (paper's `G.getOutNgh(s)`).
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[Edge] {
        self.as_graph_ref().out_edges(v)
    }

    /// Incoming edges of `v` (paper's `G.getInNgh(d)`); the `dst` field holds
    /// the *source* of the original edge.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[Edge] {
        self.as_graph_ref().in_edges(v)
    }

    /// Vertex coordinates, if the graph carries them (road networks do).
    pub fn coords(&self) -> Option<&[Point]> {
        self.coords.as_deref()
    }

    /// Attaches coordinates (replacing any existing ones).
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != num_vertices`.
    pub fn set_coords(&mut self, coords: Vec<Point>) {
        assert_eq!(coords.len(), self.num_vertices, "one coordinate per vertex");
        self.coords = Some(coords.into());
    }

    /// True when the CSR arrays are borrowed from a memory-mapped snapshot
    /// (the zero-copy `PSNAPv2` load path) rather than owned by this value.
    pub fn is_mapped(&self) -> bool {
        self.out_offsets.is_mapped()
            || self.out_edges.is_mapped()
            || self.in_offsets.is_mapped()
            || self.in_edges.is_mapped()
    }

    /// Bytes of array data this graph keeps resident — heap bytes for owned
    /// storage, file-backed (page-cache) bytes for mapped storage. This is
    /// what the serving catalog reports per graph.
    pub fn resident_bytes(&self) -> u64 {
        let coords = self
            .coords
            .as_ref()
            .map_or(0, |c| c.resident_bytes() as u64);
        self.out_offsets.resident_bytes() as u64
            + self.out_edges.resident_bytes() as u64
            + self.in_offsets.resident_bytes() as u64
            + self.in_edges.resident_bytes() as u64
            + coords
    }

    /// Maximum edge weight, or 0 for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.out_edges.iter().map(|e| e.weight).max().unwrap_or(0)
    }

    /// Sum of out-degrees over `frontier` (Julienne computes this every round
    /// to drive direction selection — an overhead §6.2 calls out).
    pub fn out_degree_sum(&self, frontier: &[VertexId]) -> u64 {
        frontier.iter().map(|&v| self.out_degree(v) as u64).sum()
    }

    /// Returns the symmetrized graph: for every edge `(u, v, w)` both
    /// `(u, v, w)` and `(v, u, w)` exist; duplicate pairs are collapsed to
    /// the minimum weight. Used for k-core and SetCover (paper Table 3:
    /// "graphs are symmetrized for k-core and SetCover").
    pub fn symmetrize(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.out_edges.len() * 2);
        for u in 0..self.num_vertices as VertexId {
            for e in self.out_edges(u) {
                if e.dst != u {
                    edges.push((u, e.dst, e.weight));
                    edges.push((e.dst, u, e.weight));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup_by(|a, b| {
            a.0 == b.0 && a.1 == b.1 && {
                b.2 = b.2.min(a.2);
                true
            }
        });
        let mut g = crate::GraphBuilder::new(self.num_vertices)
            .edges(edges)
            .build();
        g.symmetric = true;
        g.coords = self.coords.clone();
        g
    }

    /// All edges as `(src, dst, weight)` triples, in CSR order.
    pub fn edge_triples(&self) -> Vec<(VertexId, VertexId, Weight)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices as VertexId {
            for e in self.out_edges(u) {
                out.push((u, e.dst, e.weight));
            }
        }
        out
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices as VertexId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        GraphBuilder::new(4)
            .edge(0, 1, 2)
            .edge(0, 2, 5)
            .edge(1, 3, 1)
            .edge(2, 3, 1)
            .build()
    }

    #[test]
    fn degrees_and_edges() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_edges(1), &[Edge { dst: 3, weight: 1 }]);
    }

    #[test]
    fn in_edges_are_transposed_out_edges() {
        let g = diamond();
        let sources: Vec<_> = g.in_edges(3).iter().map(|e| e.dst).collect();
        assert_eq!(sources, vec![1, 2]);
    }

    #[test]
    fn symmetrize_doubles_and_marks() {
        let g = diamond();
        let s = g.symmetrize();
        assert!(s.is_symmetric());
        assert_eq!(s.num_edges(), 8);
        assert_eq!(s.out_degree(3), 2);
        // in == out for symmetric graphs
        for v in s.vertices() {
            assert_eq!(s.out_degree(v), s.in_degree(v));
        }
    }

    #[test]
    fn symmetrize_dedups_reverse_pairs_keeping_min_weight() {
        let g = GraphBuilder::new(2).edge(0, 1, 7).edge(1, 0, 3).build();
        let s = g.symmetrize();
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.out_edges(0)[0].weight, 3);
        assert_eq!(s.out_edges(1)[0].weight, 3);
    }

    #[test]
    fn symmetrize_drops_self_loops() {
        let g = GraphBuilder::new(2).edge(0, 0, 1).edge(0, 1, 1).build();
        let s = g.symmetrize();
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.out_degree(0), 1);
    }

    #[test]
    fn out_degree_sum_over_frontier() {
        let g = diamond();
        assert_eq!(g.out_degree_sum(&[0, 1]), 3);
        assert_eq!(g.out_degree_sum(&[]), 0);
    }

    #[test]
    fn max_weight_and_triples() {
        let g = diamond();
        assert_eq!(g.max_weight(), 5);
        assert_eq!(g.edge_triples().len(), 4);
        let empty = GraphBuilder::new(1).build();
        assert_eq!(empty.max_weight(), 0);
    }

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn coords_roundtrip() {
        let mut g = diamond();
        assert!(g.coords().is_none());
        g.set_coords(vec![Point::default(); 4]);
        assert_eq!(g.coords().unwrap().len(), 4);
    }

    #[test]
    #[should_panic(expected = "one coordinate per vertex")]
    fn mismatched_coords_panic() {
        let mut g = diamond();
        g.set_coords(vec![Point::default(); 3]);
    }
}
