//! Structural graph properties used by tests and workload characterization.

use crate::csr::CsrGraph;
use crate::VertexId;
use std::collections::VecDeque;

/// Unweighted BFS distances from `src` (`usize::MAX` = unreachable).
pub fn bfs_levels(graph: &CsrGraph, src: VertexId) -> Vec<usize> {
    let mut level = vec![usize::MAX; graph.num_vertices()];
    if graph.num_vertices() == 0 {
        return level;
    }
    let mut queue = VecDeque::new();
    level[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for e in graph.out_edges(u) {
            if level[e.dst as usize] == usize::MAX {
                level[e.dst as usize] = level[u as usize] + 1;
                queue.push_back(e.dst);
            }
        }
    }
    level
}

/// Number of vertices reachable from `src` (including `src`).
pub fn reachable_count(graph: &CsrGraph, src: VertexId) -> usize {
    bfs_levels(graph, src)
        .iter()
        .filter(|&&l| l != usize::MAX)
        .count()
}

/// True if every vertex is reachable from vertex 0 following out-edges.
/// For symmetric graphs this is standard connectivity.
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_vertices() == 0 || reachable_count(graph, 0) == graph.num_vertices()
}

/// Eccentricity of `src` in BFS hops, ignoring unreachable vertices.
///
/// Road stand-ins must show much larger eccentricities than social
/// stand-ins — that contrast drives the bucket-fusion results (paper §3.3).
pub fn bfs_eccentricity(graph: &CsrGraph, src: VertexId) -> usize {
    bfs_levels(graph, src)
        .into_iter()
        .filter(|&l| l != usize::MAX)
        .max()
        .unwrap_or(0)
}

/// Simple degree statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Number of vertices with zero out-degree.
    pub zeros: usize,
}

/// Computes out-degree statistics.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices().max(1);
    let mut max = 0;
    let mut zeros = 0;
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        max = max.max(d);
        zeros += usize::from(d == 0);
    }
    DegreeStats {
        max,
        mean: graph.num_edges() as f64 / n as f64,
        zeros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGen;
    use crate::GraphBuilder;

    #[test]
    fn bfs_levels_on_path() {
        let g = GraphGen::path(5).build();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_eccentricity(&g, 0), 4);
    }

    #[test]
    fn unreachable_vertices_are_max() {
        let g = GraphBuilder::new(3).edge(0, 1, 1).build();
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels[2], usize::MAX);
        assert_eq!(reachable_count(&g, 0), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn cycle_is_connected() {
        let g = GraphGen::cycle(10).build();
        assert!(is_connected(&g));
        assert_eq!(bfs_eccentricity(&g, 0), 9);
    }

    #[test]
    fn degree_stats_on_star() {
        let g = GraphGen::star(10).build();
        let stats = degree_stats(&g);
        assert_eq!(stats.max, 9);
        assert_eq!(stats.zeros, 9);
        assert!((stats.mean - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_properties() {
        let g = GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert_eq!(degree_stats(&g).max, 0);
    }
}
