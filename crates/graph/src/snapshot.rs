//! Binary graph snapshots: versioned, checksummed CSR serialization with a
//! zero-copy load path.
//!
//! Parsing a multi-gigabyte edge list on every process start defeats the
//! amortization the serving layer is built around (both GraphIt and the CGO
//! 2020 paper assume a preprocessed resident graph that many queries share).
//! A snapshot stores the *finished* CSR arrays — both directions, plus
//! coordinates and the symmetry flag. Two formats exist (see
//! `docs/ARCHITECTURE.md` for the design discussion):
//!
//! * **`PSNAPv1`** — the PR 3 format, decoded by copying every array
//!   ([`GraphSnapshot::from_bytes`]). Kept readable forever.
//! * **`PSNAPv2`** — the same content with an 8-byte-aligned layout, so
//!   [`SnapshotView::open`] can `mmap` the file and hand the engines the
//!   mapped pages *in place*: loading is O(mmap) + one validation pass, with
//!   no per-array allocation or copy, and the OS shares the pages across
//!   processes. [`GraphSnapshot::to_bytes`]/[`write`](GraphSnapshot::write)
//!   emit v2; `from_bytes` copy-decodes either version.
//!
//! # Format (`PSNAPv2`, little-endian)
//!
//! ```text
//! magic        8 bytes  b"PSNAPv2\n"
//! flags        u32      bit 0 = symmetric, bit 1 = has coordinates
//! reserved     u32      must be zero (pads the header to 32 bytes)
//! num_vertices u64
//! num_edges    u64      (directed; out- and in-arrays hold this many each)
//! out_offsets  (n+1) x u64
//! out_edges    m x (u32 dst, i32 weight)
//! in_offsets   (n+1) x u64
//! in_edges     m x (u32 dst, i32 weight)
//! coords       n x (f64 x, f64 y)        only when bit 1 of flags is set
//! checksum     u64      FNV-1a over every preceding byte
//! ```
//!
//! With the 32-byte header every section starts on an 8-byte boundary
//! (sections are multiples of 8 bytes long), which is what lets the mapped
//! bytes be reinterpreted as `&[usize]` / `&[Edge]` / `&[Point]` directly on
//! 64-bit little-endian targets. `PSNAPv1` differs only in the magic and a
//! 28-byte header (no `reserved` word) — which is exactly why it cannot be
//! mapped: its sections are 4-byte-misaligned.
//!
//! # Robustness contract
//!
//! Neither decode path panics, and neither allocates more than the input's
//! own size before validating: the declared counts must account for the byte
//! length *exactly* before any array is decoded or any section cast, so a
//! corrupted header cannot trigger an outsized allocation. Truncation, a
//! foreign magic, a future version, a checksum mismatch, and structural
//! corruption (non-monotone offsets, out-of-range endpoints, negative
//! weights, mismatched transpose degrees, non-finite coordinates) all
//! surface as [`SnapshotError`]s — from [`SnapshotView::open`] just as from
//! the copying path.

use crate::csr::{CsrGraph, Edge, Point};
use crate::graph_ref::GraphRef;
use crate::storage::Storage;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening a version-1 snapshot.
pub const MAGIC: &[u8; 8] = b"PSNAPv1\n";

/// Magic bytes opening a version-2 (alignment-aware, mappable) snapshot.
pub const MAGIC_V2: &[u8; 8] = b"PSNAPv2\n";

/// Version-independent prefix of the magics, used to distinguish "not a
/// snapshot at all" from "a snapshot from another version".
const MAGIC_PREFIX: &[u8; 5] = b"PSNAP";

const FLAG_SYMMETRIC: u32 = 1 << 0;
const FLAG_COORDS: u32 = 1 << 1;

const V1_HEADER_LEN: usize = 8 + 4 + 8 + 8;
const V2_HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file is a snapshot of an unsupported (newer or older) version.
    UnsupportedVersion,
    /// The byte length does not match what the header declares.
    Truncated {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// The arrays decode but violate a CSR structural invariant.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a priograph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion => {
                write!(
                    f,
                    "snapshot version unsupported (want {MAGIC:?} or {MAGIC_V2:?})"
                )
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: header declares {expected} bytes, file has {actual}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(why.into())
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free, and strong enough to
/// catch the bit rot and partial writes a serving fleet actually sees.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// How a [`SnapshotView`]'s graph ended up in memory — reported per graph by
/// the serving catalog (`ListGraphs`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// The CSR arrays are owned heap allocations (copying decode, or the
    /// read-to-heap mmap fallback).
    Owned,
    /// The CSR arrays borrow a live read-only file mapping (zero-copy).
    Mapped,
}

impl LoadMode {
    /// Stable lowercase spelling (`"owned"` / `"mmap"`), used on the wire
    /// and in operator-facing listings.
    pub fn as_str(self) -> &'static str {
        match self {
            LoadMode::Owned => "owned",
            LoadMode::Mapped => "mmap",
        }
    }
}

impl fmt::Display for LoadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Mapping knobs for [`SnapshotView::open_with`] — cold-cache readahead
/// controls for serving paper-scale graphs. Hints only: every combination
/// loads the same graph everywhere, differing at most in when page-ins
/// happen.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MapOptions {
    /// Pre-fault the whole snapshot at map time (`MAP_POPULATE`, Linux).
    pub populate: bool,
    /// Advise sequential access for the front-to-back validation scan
    /// (`madvise(MADV_SEQUENTIAL)`).
    pub sequential: bool,
}

impl MapOptions {
    /// The serving default when `--mmap-populate` is set: pre-fault and
    /// advise sequential, so validation never stalls on page-in.
    pub fn populate_sequential() -> MapOptions {
        MapOptions {
            populate: true,
            sequential: true,
        }
    }
}

/// Parsed header fields common to both snapshot versions.
struct Header {
    version: u8,
    n: usize,
    m: usize,
    symmetric: bool,
    has_coords: bool,
    header_len: usize,
}

impl Header {
    fn parse(bytes: &[u8]) -> Result<Header, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        let version = if magic == MAGIC {
            1
        } else if magic == MAGIC_V2 {
            2
        } else if &magic[..MAGIC_PREFIX.len()] == MAGIC_PREFIX {
            return Err(SnapshotError::UnsupportedVersion);
        } else {
            return Err(SnapshotError::BadMagic);
        };
        let flags = r.u32()?;
        if flags & !(FLAG_SYMMETRIC | FLAG_COORDS) != 0 {
            return Err(corrupt(format!("unknown flags {flags:#x}")));
        }
        if version == 2 {
            let reserved = r.u32()?;
            if reserved != 0 {
                return Err(corrupt(format!(
                    "nonzero reserved header word {reserved:#x}"
                )));
            }
        }
        let n = r.u64()? as usize;
        let m = r.u64()? as usize;
        Ok(Header {
            version,
            n,
            m,
            symmetric: flags & FLAG_SYMMETRIC != 0,
            has_coords: flags & FLAG_COORDS != 0,
            header_len: r.pos,
        })
    }

    /// Total file length the header implies (body + trailing checksum),
    /// computed with checked arithmetic: `None` when the true value exceeds
    /// `usize` (the caller reports that as a corrupt size, never wraps).
    fn expected_len(&self) -> Option<usize> {
        let offsets = self.n.checked_add(1)?.checked_mul(8)?.checked_mul(2)?;
        let edges = self.m.checked_mul(8)?.checked_mul(2)?;
        let coords = if self.has_coords {
            self.n.checked_mul(16)?
        } else {
            0
        };
        self.header_len
            .checked_add(offsets)?
            .checked_add(edges)?
            .checked_add(coords)?
            .checked_add(8)
    }

    /// Validates total length and trailing checksum; every decode path runs
    /// this before touching (or casting) any section.
    fn check_envelope(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let expected = self
            .expected_len()
            .ok_or_else(|| corrupt("size overflow"))?;
        if bytes.len() != expected {
            return Err(SnapshotError::Truncated {
                expected,
                actual: bytes.len(),
            });
        }
        let declared = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(&bytes[..bytes.len() - 8]) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }
        Ok(())
    }

    /// Byte offsets of the five sections, in file order.
    fn sections(&self) -> Sections {
        let out_offsets = self.header_len;
        let out_edges = out_offsets + (self.n + 1) * 8;
        let in_offsets = out_edges + self.m * 8;
        let in_edges = in_offsets + (self.n + 1) * 8;
        let coords = in_edges + self.m * 8;
        Sections {
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            coords,
        }
    }
}

struct Sections {
    out_offsets: usize,
    out_edges: usize,
    in_offsets: usize,
    in_edges: usize,
    coords: usize,
}

/// Structural validation shared by the copying and zero-copy paths: one CSR
/// direction's offsets and edges.
fn validate_dir(
    what: &str,
    offsets: &[usize],
    edges: &[Edge],
    n: usize,
    m: usize,
) -> Result<(), SnapshotError> {
    debug_assert_eq!(offsets.len(), n + 1);
    debug_assert_eq!(edges.len(), m);
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(corrupt(format!("{what} offsets do not span 0..{m}")));
    }
    if offsets.windows(2).any(|w| w[1] < w[0]) {
        return Err(corrupt(format!("{what} offsets not monotone")));
    }
    for e in edges {
        if e.dst as usize >= n {
            return Err(corrupt(format!(
                "{what} endpoint {} out of range for {n} vertices",
                e.dst
            )));
        }
        if e.weight < 0 {
            return Err(corrupt(format!(
                "{what} edge has negative weight {}",
                e.weight
            )));
        }
    }
    Ok(())
}

/// The in-direction must be the transpose of the out-direction; a full
/// edge-by-edge comparison would need a sort, but per-vertex degree sums
/// catch offset-table corruption in O(n + m).
fn validate_transpose(
    out_edges: &[Edge],
    in_offsets: &[usize],
    n: usize,
) -> Result<(), SnapshotError> {
    let mut in_counts = vec![0u64; n];
    for e in out_edges {
        in_counts[e.dst as usize] += 1;
    }
    for v in 0..n {
        let declared = (in_offsets[v + 1] - in_offsets[v]) as u64;
        if in_counts[v] != declared {
            return Err(corrupt(format!(
                "vertex {v}: in-degree {declared} does not match transpose degree {}",
                in_counts[v]
            )));
        }
    }
    Ok(())
}

fn validate_coords(coords: &[Point]) -> Result<(), SnapshotError> {
    for p in coords {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(corrupt("non-finite coordinate"));
        }
    }
    Ok(())
}

/// Namespace for snapshot serialization (see the module docs for the
/// formats).
///
/// # Example
///
/// ```
/// use priograph_graph::gen::GraphGen;
/// use priograph_graph::snapshot::GraphSnapshot;
///
/// let g = GraphGen::road_grid(8, 8).seed(3).build();
/// let bytes = GraphSnapshot::to_bytes(&g); // PSNAPv2
/// let loaded = GraphSnapshot::from_bytes(&bytes).unwrap();
/// assert_eq!(loaded.edge_triples(), g.edge_triples());
/// assert!(loaded.is_symmetric() == g.is_symmetric());
/// ```
#[derive(Debug)]
pub struct GraphSnapshot;

impl GraphSnapshot {
    /// Serializes `graph` into the current (`PSNAPv2`) snapshot format —
    /// the one [`SnapshotView::open`] can memory-map without copying.
    pub fn to_bytes(graph: &CsrGraph) -> Vec<u8> {
        Self::encode(graph, 2)
    }

    /// Serializes `graph` into the legacy `PSNAPv1` format (copy-decoded
    /// only). Exists for cross-version tests and for producing snapshots an
    /// older reader can load; new code wants [`GraphSnapshot::to_bytes`].
    pub fn to_bytes_v1(graph: &CsrGraph) -> Vec<u8> {
        Self::encode(graph, 1)
    }

    fn encode(graph: &CsrGraph, version: u8) -> Vec<u8> {
        let g = graph.as_graph_ref();
        let n = g.num_vertices();
        let m = g.num_edges();
        let has_coords = g.coords().is_some();
        let mut flags = 0u32;
        if g.is_symmetric() {
            flags |= FLAG_SYMMETRIC;
        }
        if has_coords {
            flags |= FLAG_COORDS;
        }
        let header_len = if version == 1 {
            V1_HEADER_LEN
        } else {
            V2_HEADER_LEN
        };
        let body = header_len + (n + 1) * 16 + m * 16 + if has_coords { n * 16 } else { 0 };
        let mut out = Vec::with_capacity(body + 8);
        out.extend_from_slice(if version == 1 { MAGIC } else { MAGIC_V2 });
        out.extend_from_slice(&flags.to_le_bytes());
        if version == 2 {
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        }
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(m as u64).to_le_bytes());
        let write_dir = |out: &mut Vec<u8>, offsets: &[usize], edges: &[Edge]| {
            for &o in offsets {
                out.extend_from_slice(&(o as u64).to_le_bytes());
            }
            for e in edges {
                out.extend_from_slice(&e.dst.to_le_bytes());
                out.extend_from_slice(&e.weight.to_le_bytes());
            }
        };
        let (out_offsets, out_edges) = g.out_arrays();
        let (in_offsets, in_edges) = g.in_arrays();
        write_dir(&mut out, out_offsets, out_edges);
        write_dir(&mut out, in_offsets, in_edges);
        if let Some(coords) = g.coords() {
            for p in coords {
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a snapshot of either version by copying into owned arrays.
    ///
    /// For large v2 files prefer [`SnapshotView::open`], which maps instead
    /// of copying.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<CsrGraph, SnapshotError> {
        let header = Header::parse(bytes)?;
        header.check_envelope(bytes)?;
        let (n, m) = (header.n, header.m);
        let mut r = Reader {
            bytes,
            pos: header.header_len,
        };
        let mut read_dir = |what: &str| -> Result<(Vec<usize>, Vec<Edge>), SnapshotError> {
            // Allocation is bounded: check_envelope proved n and m are
            // consistent with the actual byte length.
            let mut offsets = Vec::with_capacity(n + 1);
            for _ in 0..n + 1 {
                offsets.push(r.u64()? as usize);
            }
            let mut edges = Vec::with_capacity(m);
            for _ in 0..m {
                let dst = r.u32()?;
                let weight = r.i32()?;
                edges.push(Edge { dst, weight });
            }
            validate_dir(what, &offsets, &edges, n, m)?;
            Ok((offsets, edges))
        };
        let (out_offsets, out_edges) = read_dir("out")?;
        let (in_offsets, in_edges) = read_dir("in")?;
        validate_transpose(&out_edges, &in_offsets, n)?;
        let coords = if header.has_coords {
            let mut coords = Vec::with_capacity(n);
            for _ in 0..n {
                let x = f64::from_le_bytes(r.take(8)?.try_into().unwrap());
                let y = f64::from_le_bytes(r.take(8)?.try_into().unwrap());
                coords.push(Point { x, y });
            }
            validate_coords(&coords)?;
            Some(coords.into())
        } else {
            None
        };
        Ok(CsrGraph {
            num_vertices: n,
            out_offsets: out_offsets.into(),
            out_edges: out_edges.into(),
            in_offsets: in_offsets.into(),
            in_edges: in_edges.into(),
            coords,
            symmetric: header.symmetric,
        })
    }

    /// Writes `graph` as a `PSNAPv2` snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates IO failures.
    pub fn write(graph: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, Self::to_bytes(graph))
    }

    /// Writes `graph` as a legacy `PSNAPv1` snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates IO failures.
    pub fn write_v1(graph: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, Self::to_bytes_v1(graph))
    }

    /// Loads a snapshot file of either version **by copying** into owned
    /// arrays. [`SnapshotView::open`] is the zero-copy alternative for v2
    /// files.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on IO failure or any malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<CsrGraph, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// A snapshot opened for serving: the graph plus how it is resident.
///
/// [`SnapshotView::open`] is the O(mmap) load path. For a `PSNAPv2` file it
/// maps the file read-only, validates it in place (checksum + structure —
/// one streaming read; the only graph-sized scratch is the transpose
/// check's `n`-element degree counter, freed before this returns — no edge
/// array is ever copied or decoded), and builds a [`CsrGraph`] whose arrays
/// *borrow the mapping*; the engines then traverse the file's page cache
/// directly, and cloning the graph is O(1).
/// A `PSNAPv1` file (whose layout is misaligned by design of its era) falls
/// back to the copying decoder, as does any platform where the in-memory
/// layout differs from the file's (big-endian or 32-bit `usize`).
///
/// # Example
///
/// ```
/// use priograph_graph::gen::GraphGen;
/// use priograph_graph::snapshot::{GraphSnapshot, SnapshotView};
///
/// let g = GraphGen::road_grid(6, 6).seed(1).build();
/// let path = std::env::temp_dir().join("snapshot_view_doc.snap");
/// GraphSnapshot::write(&g, &path).unwrap();
///
/// let view = SnapshotView::open(&path).unwrap();
/// assert_eq!(view.graph().edge_triples(), g.edge_triples());
/// assert_eq!(view.version(), 2);
/// println!("loaded as {}", view.mode()); // "mmap" on 64-bit unix
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct SnapshotView {
    graph: CsrGraph,
    mode: LoadMode,
    version: u8,
    file_bytes: u64,
}

impl SnapshotView {
    /// Opens a snapshot file of either version, zero-copy where the format
    /// and platform allow (see the type docs).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on IO failure or any malformed content;
    /// never panics.
    pub fn open(path: impl AsRef<Path>) -> Result<SnapshotView, SnapshotError> {
        Self::open_with(path, MapOptions::default())
    }

    /// Opens a snapshot like [`SnapshotView::open`], with explicit mapping
    /// options: `populate` pre-faults the file into the page cache at map
    /// time (`MAP_POPULATE`, Linux), `sequential` advises the kernel that
    /// the validation scan reads front to back (`madvise(MADV_SEQUENTIAL)`).
    /// Both degrade to no-ops where unavailable — the knobs affect
    /// cold-cache timing only, never the loaded graph.
    ///
    /// # Errors
    ///
    /// As for [`SnapshotView::open`].
    pub fn open_with(
        path: impl AsRef<Path>,
        options: MapOptions,
    ) -> Result<SnapshotView, SnapshotError> {
        let file = std::fs::File::open(path)?;
        let mut mmap_options = memmap2::MmapOptions::new();
        if options.populate {
            mmap_options = mmap_options.populate();
        }
        let map = mmap_options.map_or_read(&file)?;
        if options.sequential {
            map.advise(memmap2::Advice::Sequential);
        }
        Self::from_map(map)
    }

    fn from_map(map: memmap2::Mmap) -> Result<SnapshotView, SnapshotError> {
        let header = Header::parse(&map)?;
        header.check_envelope(&map)?;
        let file_bytes = map.len() as u64;
        let version = header.version;
        let (graph, mode) = if version == 2 {
            zero_copy_or_decode(map, &header)?
        } else {
            (GraphSnapshot::from_bytes(&map)?, LoadMode::Owned)
        };
        Ok(SnapshotView {
            graph,
            mode,
            version,
            file_bytes,
        })
    }

    /// The resident graph. Clone it (O(1) when mapped) to share with a
    /// serving catalog.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Consumes the view, returning the graph (which keeps the mapping
    /// alive through its storage for as long as it lives).
    pub fn into_graph(self) -> CsrGraph {
        self.graph
    }

    /// Borrowed CSR view of the resident graph.
    pub fn graph_ref(&self) -> GraphRef<'_> {
        self.graph.as_graph_ref()
    }

    /// How the arrays are resident: [`LoadMode::Mapped`] when they borrow a
    /// live `mmap` region, [`LoadMode::Owned`] for every copying/heap path.
    pub fn mode(&self) -> LoadMode {
        self.mode
    }

    /// Snapshot format version the file carried (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Size of the snapshot file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }
}

/// v2 zero-copy construction on layout-compatible targets: cast each
/// section of the (already envelope-checked) mapping in place, validate,
/// and wrap the sections in mapping-backed storage.
#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
fn zero_copy_or_decode(
    map: memmap2::Mmap,
    header: &Header,
) -> Result<(CsrGraph, LoadMode), SnapshotError> {
    let (n, m) = (header.n, header.m);
    let sections = header.sections();
    let mode = if map.is_mapped() {
        LoadMode::Mapped
    } else {
        LoadMode::Owned
    };
    let map = Arc::new(map);
    fn section<T: crate::storage::Pod>(
        map: &Arc<memmap2::Mmap>,
        offset: usize,
        len: usize,
    ) -> Result<Storage<T>, SnapshotError> {
        Storage::mapped(Arc::clone(map), offset, len).map_err(corrupt)
    }
    let out_offsets: Storage<usize> = section(&map, sections.out_offsets, n + 1)?;
    let out_edges: Storage<Edge> = section(&map, sections.out_edges, m)?;
    let in_offsets: Storage<usize> = section(&map, sections.in_offsets, n + 1)?;
    let in_edges: Storage<Edge> = section(&map, sections.in_edges, m)?;
    validate_dir("out", &out_offsets, &out_edges, n, m)?;
    validate_dir("in", &in_offsets, &in_edges, n, m)?;
    validate_transpose(&out_edges, &in_offsets, n)?;
    let coords = if header.has_coords {
        let coords: Storage<Point> = section(&map, sections.coords, n)?;
        validate_coords(&coords)?;
        Some(coords)
    } else {
        None
    };
    Ok((
        CsrGraph {
            num_vertices: n,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            coords,
            symmetric: header.symmetric,
        },
        mode,
    ))
}

/// On big-endian or 32-bit targets the file layout differs from memory
/// layout, so v2 falls back to the copying decoder.
#[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
fn zero_copy_or_decode(
    map: memmap2::Mmap,
    _header: &Header,
) -> Result<(CsrGraph, LoadMode), SnapshotError> {
    Ok((GraphSnapshot::from_bytes(&map)?, LoadMode::Owned))
}

/// Bounds-checked little-endian cursor over the input bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                expected: self.pos.saturating_add(len),
                actual: self.bytes.len(),
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGen;
    use crate::GraphBuilder;

    fn fixture() -> CsrGraph {
        GraphGen::rmat(7, 4)
            .seed(11)
            .weights_uniform(1, 100)
            .build()
    }

    fn graphs_equal(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.edge_triples(), b.edge_triples());
        assert_eq!(a.is_symmetric(), b.is_symmetric());
        match (a.coords(), b.coords()) {
            (None, None) => {}
            (Some(ca), Some(cb)) => assert_eq!(ca, cb),
            _ => panic!("coords presence mismatch"),
        }
        // The in-direction must roundtrip too (pull traversals read it).
        for v in a.vertices() {
            assert_eq!(a.in_edges(v), b.in_edges(v));
        }
    }

    /// Re-seals the trailing checksum after a test mutated payload bytes.
    fn reseal(bytes: &mut [u8]) {
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn open_with_populate_loads_the_same_graph_in_the_same_mode() {
        let g = fixture();
        let path = std::env::temp_dir().join("priograph_snapshot_populate.snap");
        GraphSnapshot::write(&g, &path).unwrap();
        let plain = SnapshotView::open(&path).unwrap();
        for options in [
            MapOptions::populate_sequential(),
            MapOptions {
                populate: true,
                sequential: false,
            },
            MapOptions {
                populate: false,
                sequential: true,
            },
        ] {
            let view = SnapshotView::open_with(&path, options).unwrap();
            assert_eq!(view.mode(), plain.mode(), "{options:?}");
            assert_eq!(view.version(), plain.version());
            graphs_equal(view.graph(), &g);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn roundtrip_plain_graph_both_versions() {
        let g = fixture();
        for bytes in [GraphSnapshot::to_bytes(&g), GraphSnapshot::to_bytes_v1(&g)] {
            let loaded = GraphSnapshot::from_bytes(&bytes).unwrap();
            graphs_equal(&g, &loaded);
        }
    }

    #[test]
    fn v2_is_the_default_and_v1_is_distinct() {
        let g = fixture();
        let v2 = GraphSnapshot::to_bytes(&g);
        let v1 = GraphSnapshot::to_bytes_v1(&g);
        assert_eq!(&v2[..8], MAGIC_V2);
        assert_eq!(&v1[..8], MAGIC);
        assert_eq!(v2.len(), v1.len() + 4, "v2 adds exactly the reserved word");
    }

    #[test]
    fn roundtrip_symmetric_graph_with_coords() {
        let g = GraphGen::road_grid(9, 7).seed(2).build();
        assert!(g.is_symmetric() && g.coords().is_some());
        let loaded = GraphSnapshot::from_bytes(&GraphSnapshot::to_bytes(&g)).unwrap();
        graphs_equal(&g, &loaded);
    }

    #[test]
    fn roundtrip_empty_and_edgeless_graphs() {
        for g in [GraphBuilder::new(0).build(), GraphBuilder::new(5).build()] {
            let loaded = GraphSnapshot::from_bytes(&GraphSnapshot::to_bytes(&g)).unwrap();
            graphs_equal(&g, &loaded);
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = fixture();
        let path = std::env::temp_dir().join("priograph_snapshot_test.snap");
        GraphSnapshot::write(&g, &path).unwrap();
        let loaded = GraphSnapshot::load(&path).unwrap();
        graphs_equal(&g, &loaded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = GraphSnapshot::load("/nonexistent/priograph.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        let err = SnapshotView::open("/nonexistent/priograph.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        bytes[0] = b'X';
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        ));
    }

    #[test]
    fn future_version_is_rejected_distinctly() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        bytes[6] = b'9'; // PSNAPv9
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion
        ));
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        for bytes in [
            GraphSnapshot::to_bytes(&fixture()),
            GraphSnapshot::to_bytes_v1(&fixture()),
        ] {
            // Cutting anywhere — header, arrays, checksum — must return Err.
            let mut cuts: Vec<usize> = (0..bytes.len().min(64)).collect();
            cuts.extend([bytes.len() / 2, bytes.len() - 9, bytes.len() - 1]);
            for cut in cuts {
                assert!(
                    GraphSnapshot::from_bytes(&bytes[..cut]).is_err(),
                    "truncation at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = GraphSnapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch), "{err}");
    }

    #[test]
    fn lying_vertex_count_cannot_demand_a_huge_allocation() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        // Claim ~2^60 vertices; the size check must reject this before any
        // decode-side allocation happens (size overflow / truncation, not
        // OOM). A smaller lie that stays in usize range must fail too.
        // v2 header: num_vertices lives at byte 16.
        bytes[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_) | SnapshotError::Truncated { .. }
        ));
        bytes[16..24].copy_from_slice(&(1u64 << 33).to_le_bytes());
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn nonzero_reserved_word_is_corrupt() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        bytes[12..16].copy_from_slice(&7u32.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn structural_corruption_is_detected_behind_a_valid_checksum() {
        let g = GraphBuilder::new(3).edge(0, 1, 5).edge(1, 2, 6).build();
        let mut bytes = GraphSnapshot::to_bytes(&g);
        // Point the first out-edge at vertex 7 (out of range) and re-seal the
        // checksum so only structural validation can catch it.
        let edge_pos = V2_HEADER_LEN + 4 * 8;
        bytes[edge_pos..edge_pos + 4].copy_from_slice(&7u32.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn mismatched_transpose_degrees_are_detected() {
        // 0 -> 1: out_offsets [0,1,1], in_offsets [0,0,1]. Rewrite the
        // middle in-offset to 1 (still monotone, still spanning 0..m) and
        // reseal the checksum: only the transpose-degree check can object.
        let g = GraphBuilder::new(2).edge(0, 1, 5).build();
        let mut bytes = GraphSnapshot::to_bytes(&g);
        let in_offsets_pos = V2_HEADER_LEN + 3 * 8 + 8; // header + out_offsets + out_edges
        let mid = in_offsets_pos + 8;
        bytes[mid..mid + 8].copy_from_slice(&1u64.to_le_bytes());
        reseal(&mut bytes);
        match GraphSnapshot::from_bytes(&bytes).unwrap_err() {
            SnapshotError::Corrupt(why) => assert!(why.contains("transpose"), "{why}"),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    /// Writes `bytes` to a temp file and opens it as a [`SnapshotView`].
    fn view_of(bytes: &[u8], name: &str) -> Result<SnapshotView, SnapshotError> {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, bytes).unwrap();
        let view = SnapshotView::open(&path);
        let _ = std::fs::remove_file(&path);
        view
    }

    #[test]
    fn cross_version_matrix_all_paths_agree() {
        // Every (writer version × reader path) cell must produce the same
        // graph: v1/v2 through the copying decoder, v1/v2 through the view.
        for g in [
            fixture(),
            GraphGen::road_grid(7, 5).seed(4).build(),
            GraphBuilder::new(0).build(),
            GraphBuilder::new(3).build(),
        ] {
            let v1 = GraphSnapshot::to_bytes_v1(&g);
            let v2 = GraphSnapshot::to_bytes(&g);
            graphs_equal(&g, &GraphSnapshot::from_bytes(&v1).unwrap());
            graphs_equal(&g, &GraphSnapshot::from_bytes(&v2).unwrap());
            let via_v1 = view_of(&v1, "priograph_matrix_v1.snap").unwrap();
            assert_eq!(via_v1.version(), 1);
            assert_eq!(via_v1.mode(), LoadMode::Owned, "v1 always copies");
            graphs_equal(&g, via_v1.graph());
            let via_v2 = view_of(&v2, "priograph_matrix_v2.snap").unwrap();
            assert_eq!(via_v2.version(), 2);
            assert_eq!(via_v2.file_bytes(), v2.len() as u64);
            graphs_equal(&g, via_v2.graph());
        }
    }

    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    #[test]
    fn v2_view_is_zero_copy_on_this_platform() {
        let g = GraphGen::road_grid(9, 9).seed(6).build();
        let view = view_of(&GraphSnapshot::to_bytes(&g), "priograph_zero_copy.snap").unwrap();
        assert_eq!(view.mode(), LoadMode::Mapped);
        assert!(view.graph().is_mapped());
        assert_eq!(view.graph().resident_bytes(), g.resident_bytes());
        // A mapped graph clones in O(1) (refcount bump) and stays usable
        // after the view is gone: the storage keeps the mapping alive.
        let clone = view.graph().clone();
        let owned = view.into_graph();
        drop(owned);
        graphs_equal(&g, &clone);
        // Engines see identical adjacency through the mapped arrays.
        assert_eq!(clone.out_edges(17), g.out_edges(17));
        assert_eq!(clone.as_graph_ref().in_edges(3), g.in_edges(3));
    }

    #[test]
    fn v2_view_rejects_malformed_input_without_panicking() {
        let g = fixture();
        let good = GraphSnapshot::to_bytes(&g);

        // Truncation at every early boundary plus section-interior cuts.
        let mut cuts: Vec<usize> = (0..good.len().min(48)).collect();
        cuts.extend([good.len() / 3, good.len() - 9, good.len() - 1]);
        for cut in cuts {
            assert!(
                view_of(&good[..cut], "priograph_view_trunc.snap").is_err(),
                "view truncation at {cut} must fail"
            );
        }

        // Bad magic and foreign versions.
        let mut bad = good.clone();
        bad[0] = b'Q';
        assert!(matches!(
            view_of(&bad, "priograph_view_magic.snap").unwrap_err(),
            SnapshotError::BadMagic
        ));
        let mut future = good.clone();
        future[6] = b'7';
        assert!(matches!(
            view_of(&future, "priograph_view_future.snap").unwrap_err(),
            SnapshotError::UnsupportedVersion
        ));

        // Misalignment: extra trailing byte breaks the exact-length check
        // (the only way a well-formed v2 header could yield misaligned
        // sections is a size lie, which Truncated catches first).
        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(
            view_of(&padded, "priograph_view_pad.snap").unwrap_err(),
            SnapshotError::Truncated { .. }
        ));

        // Structural lie behind a valid checksum.
        let small = GraphBuilder::new(3).edge(0, 1, 5).edge(1, 2, 6).build();
        let mut bytes = GraphSnapshot::to_bytes(&small);
        let edge_pos = V2_HEADER_LEN + 4 * 8;
        bytes[edge_pos..edge_pos + 4].copy_from_slice(&9u32.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            view_of(&bytes, "priograph_view_corrupt.snap").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));

        // Bit flip behind the checksum.
        let mut flipped = good;
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            view_of(&flipped, "priograph_view_flip.snap").unwrap_err(),
            SnapshotError::ChecksumMismatch
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::Truncated {
            expected: 10,
            actual: 5
        }
        .to_string()
        .contains("10"));
        assert!(SnapshotError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(SnapshotError::Corrupt("x".into()).to_string().contains('x'));
        assert_eq!(LoadMode::Mapped.to_string(), "mmap");
        assert_eq!(LoadMode::Owned.to_string(), "owned");
    }
}
