//! Binary graph snapshots: a versioned, checksummed CSR serialization.
//!
//! Parsing a multi-gigabyte edge list on every process start defeats the
//! amortization the serving layer is built around (both GraphIt and the CGO
//! 2020 paper assume a preprocessed resident graph that many queries share).
//! A snapshot stores the *finished* CSR arrays — both directions, plus
//! coordinates and the symmetry flag — so loading is one `fs::read` plus
//! O(|V| + |E|) fixed-width decoding, with no edge-list re-sort.
//!
//! # Format (`PSNAP`, version 1, little-endian)
//!
//! ```text
//! magic        8 bytes  b"PSNAPv1\n"
//! flags        u32      bit 0 = symmetric, bit 1 = has coordinates
//! num_vertices u64
//! num_edges    u64      (directed; out- and in-arrays hold this many each)
//! out_offsets  (n+1) x u64
//! out_edges    m x (u32 dst, i32 weight)
//! in_offsets   (n+1) x u64
//! in_edges     m x (u32 dst, i32 weight)
//! coords       n x (f64 x, f64 y)        only when bit 1 of flags is set
//! checksum     u64      FNV-1a over every preceding byte
//! ```
//!
//! # Robustness contract
//!
//! [`GraphSnapshot::from_bytes`] never panics and never allocates more than
//! the input's own size before validating: the declared counts must account
//! for the byte length *exactly* before any array is decoded, so a corrupted
//! header cannot trigger an outsized allocation. Truncation, a foreign
//! magic, a future version, a checksum mismatch, and structural corruption
//! (non-monotone offsets, out-of-range endpoints, negative weights,
//! mismatched transpose degrees) all surface as [`SnapshotError`]s.

use crate::csr::{CsrGraph, Edge, Point};
use std::fmt;
use std::io;
use std::path::Path;

/// Magic bytes opening every snapshot; the version is part of the magic so
/// bumping it makes old readers fail with [`SnapshotError::BadMagic`]'s
/// sibling [`SnapshotError::UnsupportedVersion`] rather than garbage.
pub const MAGIC: &[u8; 8] = b"PSNAPv1\n";

/// Version-independent prefix of [`MAGIC`] used to distinguish "not a
/// snapshot at all" from "a snapshot from another version".
const MAGIC_PREFIX: &[u8; 5] = b"PSNAP";

const FLAG_SYMMETRIC: u32 = 1 << 0;
const FLAG_COORDS: u32 = 1 << 1;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file is a snapshot of an unsupported (newer or older) version.
    UnsupportedVersion,
    /// The byte length does not match what the header declares.
    Truncated {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// The arrays decode but violate a CSR structural invariant.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a priograph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion => {
                write!(f, "snapshot version unsupported (want {MAGIC:?})")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: header declares {expected} bytes, file has {actual}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free, and strong enough to
/// catch the bit rot and partial writes a serving fleet actually sees.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Namespace for snapshot serialization (see the module docs for the
/// format).
///
/// # Example
///
/// ```
/// use priograph_graph::gen::GraphGen;
/// use priograph_graph::snapshot::GraphSnapshot;
///
/// let g = GraphGen::road_grid(8, 8).seed(3).build();
/// let bytes = GraphSnapshot::to_bytes(&g);
/// let loaded = GraphSnapshot::from_bytes(&bytes).unwrap();
/// assert_eq!(loaded.edge_triples(), g.edge_triples());
/// assert!(loaded.is_symmetric() == g.is_symmetric());
/// ```
#[derive(Debug)]
pub struct GraphSnapshot;

impl GraphSnapshot {
    /// Serializes `graph` into the snapshot byte format.
    pub fn to_bytes(graph: &CsrGraph) -> Vec<u8> {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let has_coords = graph.coords().is_some();
        let mut flags = 0u32;
        if graph.is_symmetric() {
            flags |= FLAG_SYMMETRIC;
        }
        if has_coords {
            flags |= FLAG_COORDS;
        }
        let mut out = Vec::with_capacity(body_len(n, m, has_coords) + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(m as u64).to_le_bytes());
        let write_dir = |out: &mut Vec<u8>, offsets: &[usize], edges: &[Edge]| {
            for &o in offsets {
                out.extend_from_slice(&(o as u64).to_le_bytes());
            }
            for e in edges {
                out.extend_from_slice(&e.dst.to_le_bytes());
                out.extend_from_slice(&e.weight.to_le_bytes());
            }
        };
        write_dir(&mut out, &graph.out_offsets, &graph.out_edges);
        write_dir(&mut out, &graph.in_offsets, &graph.in_edges);
        if let Some(coords) = graph.coords() {
            for p in coords {
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a snapshot produced by [`GraphSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<CsrGraph, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if &magic[..MAGIC_PREFIX.len()] != MAGIC_PREFIX {
            return Err(SnapshotError::BadMagic);
        }
        if magic != MAGIC {
            return Err(SnapshotError::UnsupportedVersion);
        }
        let flags = r.u32()?;
        if flags & !(FLAG_SYMMETRIC | FLAG_COORDS) != 0 {
            return Err(SnapshotError::Corrupt(format!("unknown flags {flags:#x}")));
        }
        let n = r.u64()? as usize;
        let m = r.u64()? as usize;
        let has_coords = flags & FLAG_COORDS != 0;
        // Validate the declared sizes against the actual byte count *before*
        // decoding (and thus before any count-derived allocation): a lying
        // header must not be able to request terabytes.
        let expected = body_len(n, m, has_coords)
            .checked_add(8)
            .ok_or(SnapshotError::Corrupt("size overflow".to_string()))?;
        if bytes.len() != expected {
            return Err(SnapshotError::Truncated {
                expected,
                actual: bytes.len(),
            });
        }
        let declared = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(&bytes[..bytes.len() - 8]) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut read_dir = |what: &str| -> Result<(Vec<usize>, Vec<Edge>), SnapshotError> {
            let mut offsets = Vec::with_capacity(n + 1);
            for _ in 0..n + 1 {
                let o = r.u64()? as usize;
                if let Some(&prev) = offsets.last() {
                    if o < prev {
                        return Err(SnapshotError::Corrupt(format!(
                            "{what} offsets not monotone"
                        )));
                    }
                }
                if o > m {
                    return Err(SnapshotError::Corrupt(format!(
                        "{what} offset {o} exceeds edge count {m}"
                    )));
                }
                offsets.push(o);
            }
            if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
                return Err(SnapshotError::Corrupt(format!(
                    "{what} offsets do not span 0..{m}"
                )));
            }
            let mut edges = Vec::with_capacity(m);
            for _ in 0..m {
                let dst = r.u32()?;
                let weight = r.i32()?;
                if dst as usize >= n {
                    return Err(SnapshotError::Corrupt(format!(
                        "{what} endpoint {dst} out of range for {n} vertices"
                    )));
                }
                if weight < 0 {
                    return Err(SnapshotError::Corrupt(format!(
                        "{what} edge has negative weight {weight}"
                    )));
                }
                edges.push(Edge { dst, weight });
            }
            Ok((offsets, edges))
        };
        let (out_offsets, out_edges) = read_dir("out")?;
        let (in_offsets, in_edges) = read_dir("in")?;
        // The in-direction must be the transpose of the out-direction; a
        // full edge-by-edge comparison would need a sort, but per-vertex
        // degree sums catch offset-table corruption in O(n + m).
        let mut in_counts = vec![0u64; n];
        for e in &out_edges {
            in_counts[e.dst as usize] += 1;
        }
        for v in 0..n {
            let declared = (in_offsets[v + 1] - in_offsets[v]) as u64;
            if in_counts[v] != declared {
                return Err(SnapshotError::Corrupt(format!(
                    "vertex {v}: in-degree {declared} does not match transpose degree {}",
                    in_counts[v]
                )));
            }
        }
        let coords = if has_coords {
            let mut coords = Vec::with_capacity(n);
            for _ in 0..n {
                let x = f64::from_le_bytes(r.take(8)?.try_into().unwrap());
                let y = f64::from_le_bytes(r.take(8)?.try_into().unwrap());
                if !x.is_finite() || !y.is_finite() {
                    return Err(SnapshotError::Corrupt("non-finite coordinate".to_string()));
                }
                coords.push(Point { x, y });
            }
            Some(coords)
        } else {
            None
        };
        Ok(CsrGraph {
            num_vertices: n,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            coords,
            symmetric: flags & FLAG_SYMMETRIC != 0,
        })
    }

    /// Writes `graph` as a snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates IO failures.
    pub fn write(graph: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, Self::to_bytes(graph))
    }

    /// Loads a snapshot file written by [`GraphSnapshot::write`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on IO failure or any malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<CsrGraph, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// Byte length of a snapshot body (everything except the trailing checksum)
/// for the given dimensions, saturating instead of overflowing so the caller
/// can compare against a real file length safely.
fn body_len(n: usize, m: usize, has_coords: bool) -> usize {
    let header: usize = 8 + 4 + 8 + 8;
    let offsets = (n.saturating_add(1)).saturating_mul(8).saturating_mul(2);
    let edges = m.saturating_mul(8).saturating_mul(2);
    let coords = if has_coords { n.saturating_mul(16) } else { 0 };
    header
        .saturating_add(offsets)
        .saturating_add(edges)
        .saturating_add(coords)
}

/// Bounds-checked little-endian cursor over the input bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                expected: self.pos.saturating_add(len),
                actual: self.bytes.len(),
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGen;
    use crate::GraphBuilder;

    fn fixture() -> CsrGraph {
        GraphGen::rmat(7, 4)
            .seed(11)
            .weights_uniform(1, 100)
            .build()
    }

    fn graphs_equal(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.edge_triples(), b.edge_triples());
        assert_eq!(a.is_symmetric(), b.is_symmetric());
        match (a.coords(), b.coords()) {
            (None, None) => {}
            (Some(ca), Some(cb)) => assert_eq!(ca, cb),
            _ => panic!("coords presence mismatch"),
        }
        // The in-direction must roundtrip too (pull traversals read it).
        for v in a.vertices() {
            assert_eq!(a.in_edges(v), b.in_edges(v));
        }
    }

    #[test]
    fn roundtrip_plain_graph() {
        let g = fixture();
        let loaded = GraphSnapshot::from_bytes(&GraphSnapshot::to_bytes(&g)).unwrap();
        graphs_equal(&g, &loaded);
    }

    #[test]
    fn roundtrip_symmetric_graph_with_coords() {
        let g = GraphGen::road_grid(9, 7).seed(2).build();
        assert!(g.is_symmetric() && g.coords().is_some());
        let loaded = GraphSnapshot::from_bytes(&GraphSnapshot::to_bytes(&g)).unwrap();
        graphs_equal(&g, &loaded);
    }

    #[test]
    fn roundtrip_empty_and_edgeless_graphs() {
        for g in [GraphBuilder::new(0).build(), GraphBuilder::new(5).build()] {
            let loaded = GraphSnapshot::from_bytes(&GraphSnapshot::to_bytes(&g)).unwrap();
            graphs_equal(&g, &loaded);
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = fixture();
        let path = std::env::temp_dir().join("priograph_snapshot_test.snap");
        GraphSnapshot::write(&g, &path).unwrap();
        let loaded = GraphSnapshot::load(&path).unwrap();
        graphs_equal(&g, &loaded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = GraphSnapshot::load("/nonexistent/priograph.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        bytes[0] = b'X';
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        ));
    }

    #[test]
    fn future_version_is_rejected_distinctly() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        bytes[6] = b'9'; // PSNAPv9
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion
        ));
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        let bytes = GraphSnapshot::to_bytes(&fixture());
        // Cutting anywhere — header, arrays, checksum — must return Err.
        let mut cuts: Vec<usize> = (0..bytes.len().min(64)).collect();
        cuts.extend([bytes.len() / 2, bytes.len() - 9, bytes.len() - 1]);
        for cut in cuts {
            assert!(
                GraphSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = GraphSnapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch), "{err}");
    }

    #[test]
    fn lying_vertex_count_cannot_demand_a_huge_allocation() {
        let mut bytes = GraphSnapshot::to_bytes(&fixture());
        // Claim ~2^60 vertices; the size check must reject this before any
        // decode-side allocation happens (size overflow / truncation, not
        // OOM). A smaller lie that stays in usize range must fail too.
        bytes[12..20].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_) | SnapshotError::Truncated { .. }
        ));
        bytes[12..20].copy_from_slice(&(1u64 << 33).to_le_bytes());
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn structural_corruption_is_detected_behind_a_valid_checksum() {
        let g = GraphBuilder::new(3).edge(0, 1, 5).edge(1, 2, 6).build();
        let mut bytes = GraphSnapshot::to_bytes(&g);
        // Point the first out-edge at vertex 7 (out of range) and re-seal the
        // checksum so only structural validation can catch it.
        let edge_pos = 8 + 4 + 8 + 8 + 4 * 8;
        bytes[edge_pos..edge_pos + 4].copy_from_slice(&7u32.to_le_bytes());
        let len = bytes.len();
        let reseal = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&reseal.to_le_bytes());
        assert!(matches!(
            GraphSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn mismatched_transpose_degrees_are_detected() {
        // 0 -> 1: out_offsets [0,1,1], in_offsets [0,0,1]. Rewrite the
        // middle in-offset to 1 (still monotone, still spanning 0..m) and
        // reseal the checksum: only the transpose-degree check can object.
        let g = GraphBuilder::new(2).edge(0, 1, 5).build();
        let mut bytes = GraphSnapshot::to_bytes(&g);
        let in_offsets_pos = 28 + 3 * 8 + 8; // header + out_offsets + out_edges
        let mid = in_offsets_pos + 8;
        bytes[mid..mid + 8].copy_from_slice(&1u64.to_le_bytes());
        let len = bytes.len();
        let reseal = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&reseal.to_le_bytes());
        match GraphSnapshot::from_bytes(&bytes).unwrap_err() {
            SnapshotError::Corrupt(why) => assert!(why.contains("transpose"), "{why}"),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::Truncated {
            expected: 10,
            actual: 5
        }
        .to_string()
        .contains("10"));
        assert!(SnapshotError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(SnapshotError::Corrupt("x".into()).to_string().contains('x'));
    }
}
