//! Graph storage, generation and IO substrate for `priograph`.
//!
//! The CGO 2020 evaluation (paper Table 3) runs on two structurally distinct
//! graph families:
//!
//! * **social/web graphs** (Orkut, LiveJournal, Twitter, Friendster,
//!   WebGraph) — small diameter, heavy-tailed degree distributions, ample
//!   per-bucket parallelism;
//! * **road networks** (Massachusetts, Germany, RoadUSA) — enormous
//!   diameter, bounded degree, tiny frontiers, where synchronization
//!   overhead dominates and bucket fusion shines.
//!
//! Since the original datasets are multi-gigabyte downloads, this crate
//! provides *seeded synthetic stand-ins* preserving those structural
//! contrasts (see `DESIGN.md` §1): R-MAT power-law generators for the social
//! family and planar grid road networks (with coordinates, for A\*) for the
//! road family, plus the paper's weight distributions (`[1, 1000)` and
//! `[1, log n)`, Table 4 caption).
//!
//! The storage format is a compressed sparse row ([`CsrGraph`]) with both
//! out- and in-edges, matching what GraphIt-generated C++ traverses in
//! `SparsePush` and `DensePull` directions (paper Figure 9).
//!
//! # Example
//!
//! ```
//! use priograph_graph::gen::GraphGen;
//!
//! let g = GraphGen::rmat(8, 8).seed(42).weights_uniform(1, 1000).build();
//! assert_eq!(g.num_vertices(), 256);
//! let h = g.symmetrize();
//! assert!(h.is_symmetric());
//! ```

// Public items in this crate are load-bearing API for every engine above
// it: missing docs fail the build (ISSUE 4's rustdoc pass), and CI's docs
// job additionally denies rustdoc warnings (broken intra-doc links).
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod csr;
pub mod gen;
mod graph_ref;
pub mod io;
pub mod props;
pub mod snapshot;
mod storage;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, Edge, Point};
pub use graph_ref::GraphRef;
pub use snapshot::{GraphSnapshot, LoadMode, MapOptions, SnapshotError, SnapshotView};

/// Vertex identifier. Graphs in the evaluation are well below 2^32 vertices.
pub type VertexId = u32;

/// Edge weight as stored (non-negative; SSSP-family algorithms require it).
pub type Weight = i32;

/// "Infinite" distance sentinel: large enough that `INF + max_weight` cannot
/// overflow an `i64` accumulator (paper uses `INT_MAX` with bit tricks; we
/// keep headroom instead).
pub const INF: i64 = i64::MAX / 4;
