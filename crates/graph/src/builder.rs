//! Edge-list to CSR construction.

use crate::csr::{CsrGraph, Edge};
use crate::{VertexId, Weight};

/// Builds a [`CsrGraph`] from an edge list via counting sort.
///
/// # Example
///
/// ```
/// use priograph_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1, 4)
///     .edge(1, 2, 1)
///     .build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.out_degree(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Adds a single directed edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the weight is negative.
    pub fn edge(mut self, src: VertexId, dst: VertexId, weight: Weight) -> Self {
        self.push_edge(src, dst, weight);
        self
    }

    /// Adds many directed edges.
    pub fn edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
    {
        for (s, d, w) in edges {
            self.push_edge(s, d, w);
        }
        self
    }

    fn push_edge(&mut self, src: VertexId, dst: VertexId, weight: Weight) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(weight >= 0, "negative weight {weight} not supported");
        self.edges.push((src, dst, weight));
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR arrays (both directions).
    pub fn build(self) -> CsrGraph {
        let n = self.num_vertices;
        let (out_offsets, out_edges) =
            bucket_by(n, &self.edges, |&(s, d, w)| (s, Edge { dst: d, weight: w }));
        let (in_offsets, in_edges) =
            bucket_by(n, &self.edges, |&(s, d, w)| (d, Edge { dst: s, weight: w }));
        CsrGraph {
            num_vertices: n,
            out_offsets: out_offsets.into(),
            out_edges: out_edges.into(),
            in_offsets: in_offsets.into(),
            in_edges: in_edges.into(),
            coords: None,
            symmetric: false,
        }
    }
}

/// Counting sort of `items` into per-vertex adjacency lists.
fn bucket_by<T, F>(n: usize, items: &[T], key: F) -> (Vec<usize>, Vec<Edge>)
where
    F: Fn(&T) -> (VertexId, Edge),
{
    let mut counts = vec![0usize; n + 1];
    for item in items {
        counts[key(item).0 as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut edges = vec![Edge { dst: 0, weight: 0 }; items.len()];
    for item in items {
        let (v, e) = key(item);
        edges[cursor[v as usize]] = e;
        cursor[v as usize] += 1;
    }
    (offsets, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_preserves_all_edges() {
        let g = GraphBuilder::new(5)
            .edges(vec![(0, 1, 1), (0, 2, 2), (4, 0, 3), (2, 3, 4)])
            .build();
        assert_eq!(g.num_edges(), 4);
        let mut triples = g.edge_triples();
        triples.sort_unstable();
        assert_eq!(triples, vec![(0, 1, 1), (0, 2, 2), (2, 3, 4), (4, 0, 3)]);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = GraphBuilder::new(2).edge(0, 1, 1).edge(0, 1, 2).build();
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = GraphBuilder::new(10).edge(0, 9, 1).build();
        for v in 1..9 {
            assert_eq!(g.out_degree(v), 0);
            assert_eq!(g.in_degree(v), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = GraphBuilder::new(2).edge(0, 2, 1);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_panics() {
        let _ = GraphBuilder::new(2).edge(0, 1, -1);
    }

    #[test]
    fn transpose_agrees_with_out_edges() {
        let g = GraphBuilder::new(4)
            .edges(vec![(0, 1, 5), (1, 2, 6), (3, 1, 7)])
            .build();
        // every out edge (u, v, w) appears as in edge (v) containing u with w
        for u in g.vertices() {
            for e in g.out_edges(u) {
                assert!(g
                    .in_edges(e.dst)
                    .iter()
                    .any(|ie| ie.dst == u && ie.weight == e.weight));
            }
        }
        let out_total: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_total, in_total);
    }
}
