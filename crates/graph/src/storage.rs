//! Array storage backing [`CsrGraph`](crate::CsrGraph): owned vectors or
//! borrowed slices of a shared read-only memory map.
//!
//! Every CSR array (`out_offsets`, `out_edges`, ...) is a [`Storage<T>`],
//! which dereferences to `&[T]` exactly like the `Vec<T>` it replaced. The
//! difference is the owner: an [`Owned`](Storage) storage holds a `Vec<T>`;
//! a mapped storage holds an `Arc` on a [`memmap2::Mmap`] plus a pre-resolved
//! pointer into it, so a `PSNAPv2` snapshot loads in O(mmap) with the engines
//! reading the file's pages directly — no per-array copy, no decode
//! allocation (see [`snapshot::SnapshotView`](crate::snapshot::SnapshotView)).
//!
//! The deref is branch-free (the pointer/length pair is resolved at
//! construction), so traversal hot paths pay nothing for the indirection.

use std::ops::Deref;
use std::sync::Arc;

/// Element types that may be reinterpreted directly from snapshot bytes.
///
/// # Safety
///
/// Implementors must be `#[repr(C)]` (or a primitive), contain no padding
/// bytes that validation could miss, no niches with invalid bit patterns at
/// the containing field positions, and no pointers. All implementations live
/// in this crate next to the types they describe.
pub(crate) unsafe trait Pod: Copy + 'static {}

// SAFETY: primitives — any bit pattern is valid, no padding.
unsafe impl Pod for usize {}
// SAFETY: `Edge` is #[repr(C)] { u32, i32 }: 8 bytes, no padding, every bit
// pattern inhabited (structural validity is checked by snapshot validation,
// not the type system).
unsafe impl Pod for crate::csr::Edge {}
// SAFETY: `Point` is #[repr(C)] { f64, f64 }: 16 bytes, no padding, every
// bit pattern is a valid f64 (NaN/inf are rejected by snapshot validation
// as a semantic, not safety, matter).
unsafe impl Pod for crate::csr::Point {}

/// An immutable `[T]` with a swappable owner: a `Vec<T>` or a section of a
/// shared read-only file mapping.
pub(crate) struct Storage<T: Pod> {
    /// Resolved element pointer (into the vec or the map) — kept alongside
    /// the owner so `Deref` is a plain `from_raw_parts`, no matching.
    ptr: *const T,
    len: usize,
    owner: Owner<T>,
}

enum Owner<T> {
    Owned(Vec<T>),
    Mapped(Arc<memmap2::Mmap>),
}

// SAFETY: the storage is immutable after construction; `Vec<T>` and the
// read-only mapping are both safe to read from any thread, and `T: Pod`
// excludes interior mutability and non-Send payloads.
unsafe impl<T: Pod> Send for Storage<T> {}
unsafe impl<T: Pod> Sync for Storage<T> {}

impl<T: Pod> Storage<T> {
    /// Borrows `len` elements of `map` starting at `byte_offset`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds sections and misaligned offsets (both indicate
    /// a malformed snapshot, never a reason to panic).
    pub(crate) fn mapped(
        map: Arc<memmap2::Mmap>,
        byte_offset: usize,
        len: usize,
    ) -> Result<Self, String> {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .and_then(|b| b.checked_add(byte_offset))
            .ok_or_else(|| "section size overflows".to_string())?;
        if bytes > map.len() {
            return Err(format!(
                "section [{byte_offset}..{bytes}] exceeds the {}-byte map",
                map.len()
            ));
        }
        let base = map.as_slice().as_ptr();
        // The map base is 8-byte aligned (memmap2 shim guarantee); the
        // offset must keep the element alignment.
        if !(base as usize + byte_offset).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(format!("section at byte {byte_offset} is misaligned"));
        }
        // SAFETY: bounds and alignment checked above; the map outlives the
        // storage via the Arc and is never written.
        let ptr = unsafe { base.add(byte_offset) } as *const T;
        Ok(Storage {
            ptr,
            len,
            owner: Owner::Mapped(map),
        })
    }

    /// True when the elements live in a real `mmap` region. A storage
    /// borrowing the shim's read-to-heap fallback reports `false`: its
    /// memory behaves like any owned heap allocation.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(&self.owner, Owner::Mapped(map) if map.is_mapped())
    }

    /// Bytes of element data this storage keeps resident (heap or mapped).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.len * std::mem::size_of::<T>()
    }
}

impl<T: Pod> From<Vec<T>> for Storage<T> {
    fn from(vec: Vec<T>) -> Self {
        Storage {
            ptr: vec.as_ptr(),
            len: vec.len(),
            owner: Owner::Owned(vec),
        }
    }
}

impl<T: Pod> Default for Storage<T> {
    fn default() -> Self {
        Storage::from(Vec::new())
    }
}

impl<T: Pod> Deref for Storage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: ptr/len were validated at construction; the owner (vec or
        // Arc'd map) is held by self, and a moved Vec keeps its heap buffer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> Clone for Storage<T> {
    fn clone(&self) -> Self {
        match &self.owner {
            Owner::Owned(vec) => Storage::from(vec.clone()),
            Owner::Mapped(map) => Storage {
                ptr: self.ptr,
                len: self.len,
                owner: Owner::Mapped(Arc::clone(map)),
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Storage")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn mapped_file(payload: &[u8], name: &str) -> Arc<memmap2::Mmap> {
        let path = std::env::temp_dir().join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(payload).unwrap();
        drop(f);
        let map = memmap2::Mmap::map_or_read(&std::fs::File::open(&path).unwrap()).unwrap();
        let _ = std::fs::remove_file(path);
        Arc::new(map)
    }

    #[test]
    fn owned_storage_derefs_and_clones() {
        let s: Storage<usize> = vec![3usize, 1, 4].into();
        assert_eq!(&s[..], &[3, 1, 4]);
        assert!(!s.is_mapped());
        assert_eq!(s.resident_bytes(), 24);
        let c = s.clone();
        assert_eq!(&c[..], &s[..]);
        // An empty storage is fine too (dangling-but-aligned pointer).
        let empty: Storage<usize> = Storage::default();
        assert!(empty.is_empty());
    }

    #[test]
    fn mapped_storage_reads_file_words() {
        let mut payload = Vec::new();
        for w in [7u64, 8, 9, 10] {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        let map = mapped_file(&payload, "priograph_storage_words.bin");
        let s = Storage::<usize>::mapped(Arc::clone(&map), 8, 3).unwrap();
        assert_eq!(&s[..], &[8, 9, 10]);
        assert!(s.is_mapped());
        let c = s.clone();
        assert_eq!(&c[..], &[8, 9, 10]);
        assert!(c.is_mapped());
    }

    #[test]
    fn mapped_storage_rejects_bad_sections() {
        let map = mapped_file(&[0u8; 64], "priograph_storage_bad.bin");
        assert!(Storage::<usize>::mapped(Arc::clone(&map), 0, 9).is_err());
        assert!(Storage::<usize>::mapped(Arc::clone(&map), 4, 1).is_err());
        assert!(Storage::<usize>::mapped(Arc::clone(&map), usize::MAX, 2).is_err());
        assert!(
            Storage::<usize>::mapped(map, 64, 0).is_ok(),
            "empty tail ok"
        );
    }

    #[test]
    fn storage_moves_keep_the_pointer_valid() {
        let s: Storage<usize> = vec![5usize; 1000].into();
        let moved = s; // Vec's heap buffer does not move with the struct
        assert!(moved.iter().all(|&x| x == 5));
        let boxed = Box::new(moved);
        assert_eq!(boxed.len(), 1000);
    }
}
