//! Seeded synthetic graph generators standing in for the paper's datasets.
//!
//! | Paper dataset family | Generator | Preserved structure |
//! |---|---|---|
//! | Social/web (LJ, OK, TW, FT, WB) | [`GraphGen::rmat`] | power-law degrees, small diameter |
//! | Road (MA, GE, RD) | [`GraphGen::road_grid`] | planar, bounded degree, huge diameter, coordinates + metric weights |
//! | — micro tests | [`GraphGen::path`], [`GraphGen::cycle`], [`GraphGen::star`], [`GraphGen::uniform`] | — |
//!
//! Weight distributions follow Table 4's caption: social graphs get uniform
//! `[1, 1000)` (or `[1, log n)` for wBFS), road grids default to "original"
//! metric weights (scaled Euclidean lengths).

use crate::csr::{CsrGraph, Point};
use crate::{GraphBuilder, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT partition probabilities (GAPBS Kronecker defaults: a=0.57, b=0.19,
/// c=0.19, implicit d=0.05).
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

/// Which topology to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Topology {
    Rmat { scale: u32, edge_factor: u32 },
    RoadGrid { width: usize, height: usize },
    Uniform { n: usize, m: usize },
    Path { n: usize },
    Cycle { n: usize },
    Star { n: usize },
}

/// How to weight the generated edges.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WeightSpec {
    /// Uniform integers in `[lo, hi)`.
    Uniform { lo: Weight, hi: Weight },
    /// Uniform integers in `[1, max(2, log2 n))` — the wBFS convention.
    LogN,
    /// All ones.
    Unit,
    /// Scaled Euclidean length (road grids only; falls back to `Unit`).
    Metric,
}

/// Builder for seeded synthetic graphs.
///
/// # Example
///
/// ```
/// use priograph_graph::gen::GraphGen;
///
/// let road = GraphGen::road_grid(16, 16).seed(7).build();
/// assert!(road.coords().is_some());
/// let social = GraphGen::rmat(8, 4).seed(7).weights_log_n().build();
/// assert_eq!(social.num_vertices(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct GraphGen {
    topology: Topology,
    seed: u64,
    weights: WeightSpec,
}

impl GraphGen {
    /// Power-law R-MAT graph with `2^scale` vertices and
    /// `edge_factor * 2^scale` directed edges (social/web stand-in).
    pub fn rmat(scale: u32, edge_factor: u32) -> Self {
        GraphGen {
            topology: Topology::Rmat { scale, edge_factor },
            seed: 0x5EED,
            weights: WeightSpec::Uniform { lo: 1, hi: 1000 },
        }
    }

    /// Planar `width x height` grid with diagonal shortcuts, jittered
    /// coordinates and metric weights (road-network stand-in).
    pub fn road_grid(width: usize, height: usize) -> Self {
        GraphGen {
            topology: Topology::RoadGrid { width, height },
            seed: 0x5EED,
            weights: WeightSpec::Metric,
        }
    }

    /// Erdős–Rényi-style graph: `m` uniformly random directed edges.
    pub fn uniform(n: usize, m: usize) -> Self {
        GraphGen {
            topology: Topology::Uniform { n, m },
            seed: 0x5EED,
            weights: WeightSpec::Uniform { lo: 1, hi: 1000 },
        }
    }

    /// Directed path `0 -> 1 -> .. -> n-1` (worst-case diameter).
    pub fn path(n: usize) -> Self {
        GraphGen {
            topology: Topology::Path { n },
            seed: 0x5EED,
            weights: WeightSpec::Unit,
        }
    }

    /// Directed cycle on `n` vertices.
    pub fn cycle(n: usize) -> Self {
        GraphGen {
            topology: Topology::Cycle { n },
            seed: 0x5EED,
            weights: WeightSpec::Unit,
        }
    }

    /// Star: edges `0 -> v` for all `v != 0` (maximum frontier width).
    pub fn star(n: usize) -> Self {
        GraphGen {
            topology: Topology::Star { n },
            seed: 0x5EED,
            weights: WeightSpec::Unit,
        }
    }

    /// Sets the RNG seed (generation is fully deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uniform integer weights in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo < 1` or `hi <= lo`.
    pub fn weights_uniform(mut self, lo: Weight, hi: Weight) -> Self {
        assert!(lo >= 1 && hi > lo, "weights must satisfy 1 <= lo < hi");
        self.weights = WeightSpec::Uniform { lo, hi };
        self
    }

    /// Weights uniform in `[1, log2 n)` — the wBFS convention (paper §6.1).
    pub fn weights_log_n(mut self) -> Self {
        self.weights = WeightSpec::LogN;
        self
    }

    /// Unit weights.
    pub fn weights_unit(mut self) -> Self {
        self.weights = WeightSpec::Unit;
        self
    }

    /// Generates the graph.
    pub fn build(&self) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.topology {
            Topology::Rmat { scale, edge_factor } => self.build_rmat(&mut rng, scale, edge_factor),
            Topology::RoadGrid { width, height } => self.build_road(&mut rng, width, height),
            Topology::Uniform { n, m } => {
                let edges: Vec<_> = (0..m)
                    .map(|_| {
                        let s = rng.gen_range(0..n) as VertexId;
                        let d = rng.gen_range(0..n) as VertexId;
                        (s, d)
                    })
                    .collect();
                self.weighted(&mut rng, n, edges)
            }
            Topology::Path { n } => {
                let edges: Vec<_> = (1..n)
                    .map(|i| ((i - 1) as VertexId, i as VertexId))
                    .collect();
                self.weighted(&mut rng, n, edges)
            }
            Topology::Cycle { n } => {
                let edges: Vec<_> = (0..n)
                    .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
                    .collect();
                self.weighted(&mut rng, n, edges)
            }
            Topology::Star { n } => {
                let edges: Vec<_> = (1..n).map(|i| (0, i as VertexId)).collect();
                self.weighted(&mut rng, n, edges)
            }
        }
    }

    fn draw_weight(&self, rng: &mut StdRng, n: usize) -> Weight {
        match self.weights {
            WeightSpec::Uniform { lo, hi } => rng.gen_range(lo..hi),
            WeightSpec::LogN => {
                let hi = (usize::BITS - 1 - n.max(2).leading_zeros()) as Weight;
                rng.gen_range(1..hi.max(2))
            }
            WeightSpec::Unit | WeightSpec::Metric => 1,
        }
    }

    fn weighted(&self, rng: &mut StdRng, n: usize, edges: Vec<(VertexId, VertexId)>) -> CsrGraph {
        let weighted: Vec<_> = edges
            .into_iter()
            .map(|(s, d)| {
                let w = self.draw_weight(rng, n);
                (s, d, w)
            })
            .collect();
        GraphBuilder::new(n).edges(weighted).build()
    }

    fn build_rmat(&self, rng: &mut StdRng, scale: u32, edge_factor: u32) -> CsrGraph {
        let n = 1usize << scale;
        let m = n * edge_factor as usize;
        // Random vertex relabeling so CSR order carries no generator locality
        // (GAPBS permutes likewise).
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let (mut s, mut d) = (0usize, 0usize);
            for _ in 0..scale {
                let r: f64 = rng.gen();
                let (sb, db) = if r < RMAT_A {
                    (0, 0)
                } else if r < RMAT_A + RMAT_B {
                    (0, 1)
                } else if r < RMAT_A + RMAT_B + RMAT_C {
                    (1, 0)
                } else {
                    (1, 1)
                };
                s = (s << 1) | sb;
                d = (d << 1) | db;
            }
            if s != d {
                edges.push((perm[s], perm[d]));
            }
        }
        self.weighted(rng, n, edges)
    }

    fn build_road(&self, rng: &mut StdRng, width: usize, height: usize) -> CsrGraph {
        assert!(width >= 2 && height >= 2, "road grid needs at least 2x2");
        let n = width * height;
        let id = |x: usize, y: usize| (y * width + x) as VertexId;
        // Jittered planar coordinates on a unit-spaced grid.
        let coords: Vec<Point> = (0..n)
            .map(|v| {
                let x = (v % width) as f64 + rng.gen_range(-0.3..0.3);
                let y = (v / width) as f64 + rng.gen_range(-0.3..0.3);
                Point { x, y }
            })
            .collect();
        // Metric weight: scaled Euclidean length (always >= 1), so the A*
        // straight-line heuristic is admissible w.r.t. these weights.
        const SCALE: f64 = 100.0;
        let metric = |a: VertexId, b: VertexId, coords: &[Point]| -> Weight {
            (coords[a as usize].distance(&coords[b as usize]) * SCALE)
                .ceil()
                .max(1.0) as Weight
        };
        let mut edges = Vec::new();
        let add_bidi = |a: VertexId, b: VertexId, rng: &mut StdRng, edges: &mut Vec<_>| {
            let w = match self.weights {
                WeightSpec::Metric => metric(a, b, &coords),
                _ => self.draw_weight(rng, n),
            };
            edges.push((a, b, w));
            edges.push((b, a, w));
        };
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    add_bidi(id(x, y), id(x + 1, y), rng, &mut edges);
                }
                if y + 1 < height {
                    add_bidi(id(x, y), id(x, y + 1), rng, &mut edges);
                }
                // Sparse diagonal shortcuts mimic highway links.
                if x + 1 < width && y + 1 < height && rng.gen_bool(0.1) {
                    add_bidi(id(x, y), id(x + 1, y + 1), rng, &mut edges);
                }
            }
        }
        let mut g = GraphBuilder::new(n).edges(edges).build();
        g.symmetric = true;
        g.set_coords(coords);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn rmat_has_requested_size() {
        let g = GraphGen::rmat(8, 4).seed(3).build();
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 256 * 4);
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = GraphGen::rmat(7, 4).seed(11).build();
        let b = GraphGen::rmat(7, 4).seed(11).build();
        let c = GraphGen::rmat(7, 4).seed(12).build();
        assert_eq!(a.edge_triples(), b.edge_triples());
        assert_ne!(a.edge_triples(), c.edge_triples());
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let g = GraphGen::rmat(10, 8).seed(5).build();
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() / g.num_vertices();
        // Power-law: the hub degree dwarfs the average.
        assert!(max_deg > avg * 8, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn road_grid_is_connected_with_coords() {
        let g = GraphGen::road_grid(12, 9).seed(1).build();
        assert_eq!(g.num_vertices(), 108);
        assert!(g.is_symmetric());
        assert!(g.coords().is_some());
        assert!(props::is_connected(&g));
    }

    #[test]
    fn road_grid_has_high_diameter_relative_to_rmat() {
        let road = GraphGen::road_grid(24, 24).seed(2).build();
        let social = GraphGen::rmat(9, 8).seed(2).build().symmetrize();
        let road_ecc = props::bfs_eccentricity(&road, 0);
        let social_ecc = props::bfs_eccentricity(&social, 0);
        assert!(
            road_ecc > social_ecc * 2,
            "road {road_ecc} vs social {social_ecc}"
        );
    }

    #[test]
    fn road_metric_weights_are_admissible_for_euclidean_heuristic() {
        let g = GraphGen::road_grid(10, 10).seed(4).build();
        let coords = g.coords().unwrap();
        for u in g.vertices() {
            for e in g.out_edges(u) {
                let straight = coords[u as usize].distance(&coords[e.dst as usize]) * 100.0;
                assert!(
                    (e.weight as f64) >= straight - 1e-9,
                    "edge shorter than straight line"
                );
            }
        }
    }

    #[test]
    fn weights_uniform_within_bounds() {
        let g = GraphGen::rmat(8, 4).seed(9).weights_uniform(5, 10).build();
        assert!(g
            .edge_triples()
            .iter()
            .all(|&(_, _, w)| (5..10).contains(&w)));
    }

    #[test]
    fn weights_log_n_within_bounds() {
        let g = GraphGen::rmat(10, 4).seed(9).weights_log_n().build();
        // log2(1024) = 10
        assert!(g
            .edge_triples()
            .iter()
            .all(|&(_, _, w)| (1..10).contains(&w)));
    }

    #[test]
    fn path_cycle_star_shapes() {
        let p = GraphGen::path(5).build();
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.out_degree(4), 0);
        let c = GraphGen::cycle(5).build();
        assert_eq!(c.num_edges(), 5);
        assert!(c.vertices().all(|v| c.out_degree(v) == 1));
        let s = GraphGen::star(5).build();
        assert_eq!(s.out_degree(0), 4);
    }

    #[test]
    fn uniform_has_exact_edge_count() {
        let g = GraphGen::uniform(100, 500).seed(3).build();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_road_grid_panics() {
        let _ = GraphGen::road_grid(1, 5).build();
    }
}
