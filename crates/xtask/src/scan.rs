//! A hand-rolled Rust source scanner (no syn, no regex — the workspace is
//! offline) that splits every line into its *code* text and its *comment*
//! text, with string/char-literal contents blanked out.
//!
//! The lints in [`crate::lints`] operate on this model so that the word
//! `unsafe` inside a string literal or a comment never counts as an unsafe
//! site, and a `SAFETY:` marker inside a string never counts as an
//! annotation. The scanner understands line comments, nested block
//! comments, plain/raw/byte string literals (including multi-line ones),
//! char literals, and lifetimes.

/// One physical source line, split into code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code text with string/char contents removed.
    pub code: String,
    /// The line's comment text (`//`, `///`, `//!`, and block-comment
    /// interiors), concatenated in source order.
    pub comment: String,
}

enum Mode {
    Code,
    /// Inside a (possibly nested) block comment; payload is the depth.
    Block(usize),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus this many `#`s.
    RawStr(usize),
}

/// Scans `src` into per-line code/comment channels.
pub fn scan(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    // True if the char is part of an identifier (used to tell a raw-string
    // prefix `r"` from an identifier that merely ends in `r`).
    fn ident(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && ident(chars[i - 1]);
                if c == '/' && next == Some('/') {
                    // Line comment: the rest of the line is comment text.
                    while i < chars.len() && chars[i] != '\n' {
                        cur.comment.push(chars[i]);
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string prefix: r" r#" br" b" etc.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = c == 'r' || (c == 'b' && j > i + 1);
                    if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
                        if raw {
                            cur.code.push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        } else {
                            // b"…": plain byte string.
                            cur.code.push('"');
                            mode = Mode::Str;
                            i = j + 1;
                        }
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime. A char literal is 'x', '\n',
                    // '\u{…}', or a multi-byte char; a lifetime is '<ident>
                    // with no closing quote right after one char.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        cur.code.push('\'');
                        i += 2; // past '\
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        cur.code.push('\'');
                        i += 1; // past closing '
                    } else if chars.get(i + 2) == Some(&'\'') {
                        // 'x' single-char literal.
                        cur.code.push_str("''");
                        i += 3;
                    } else {
                        // Lifetime: keep the quote, let the ident flow.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (handles \" and \\)
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // string contents are blanked
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// True if `hay` contains `needle` as a whole word (no identifier chars on
/// either side).
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after_ok = end == hay.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let lines = scan("let x = 1; // unsafe here\n/* unsafe\nblock */ let y = 2;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe"));
        assert!(lines[1].comment.contains("unsafe"));
        assert!(lines[2].code.contains("let y"));
    }

    #[test]
    fn strips_string_contents() {
        let lines = scan("let s = \"unsafe { }\"; unsafe {}");
        assert_eq!(lines[0].code.matches("unsafe").count(), 1);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lines = scan("let s = r#\"unsafe \"quoted\" \"#; fn f<'a>(x: &'a u8) {}");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("'a"));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let lines = scan("let c = 'x'; let d = '\\n'; unsafe {}");
        assert!(contains_word(&lines[0].code, "unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = scan("/* a /* b */ still comment */ code()");
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
    }
}
