//! `cargo run -p xtask -- lint` — the workspace invariant linter.
//!
//! Four rule families, all hand-rolled (the build environment is offline,
//! so no syn/regex — the scanner in [`scan`] is the same spirit as the
//! vendored shims):
//!
//! 1. every `unsafe` site carries a `// SAFETY:` comment;
//! 2. crates with zero unsafe declare `#![forbid(unsafe_code)]`, crates
//!    with unsafe declare `#![deny(unsafe_op_in_unsafe_fn)]`;
//! 3. no `unwrap`/`expect`/`panic!` on the serving path
//!    (`crates/server/src/{server,protocol,catalog,client,faults,obs}.rs`
//!    and all of `crates/telemetry/src`, which runs inside the dispatcher
//!    and engine loops), allowlist via `// lint: allow-panic <reason>`;
//! 4. the wire constants and error-kind tables in
//!    `crates/server/src/protocol.rs` match the normative tables in
//!    `docs/PROTOCOL.md`, so spec drift fails the build.

#![forbid(unsafe_code)]

mod lints;
mod scan;

use lints::Finding;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Server files on which panicking constructs are refused (rule 3).
const SERVER_PANIC_FILES: &[&str] = &[
    "server.rs",
    "protocol.rs",
    "catalog.rs",
    "client.rs",
    "faults.rs",
    "obs.rs",
];

/// Telemetry sources under the same no-panic rule: these run inside the
/// dispatcher loop and the engines' round boundaries, where a panic
/// poisons the whole serving path.
const TELEMETRY_PANIC_FILES: &[&str] = &[
    "lib.rs",
    "hist.rs",
    "counter.rs",
    "span.rs",
    "ring.rs",
    "events.rs",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match workspace_root() {
                Some(r) => r,
                None => {
                    eprintln!("xtask: could not locate the workspace root (no Cargo.toml with [workspace] above cwd)");
                    return ExitCode::FAILURE;
                }
            };
            let findings = lint_workspace(&root);
            if findings.is_empty() {
                println!("xtask lint: workspace clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    if f.line == 0 {
                        eprintln!("{}: {}", f.file, f.msg);
                    } else {
                        eprintln!("{}:{}: {}", f.file, f.line, f.msg);
                    }
                }
                eprintln!("xtask lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// Walks upward from the current directory to the manifest that declares
/// `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Member directories: the `members = [...]` list of the root manifest,
/// plus the root package itself.
fn member_dirs(root: &Path) -> Vec<PathBuf> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut dirs = vec![root.to_path_buf()];
    let mut in_members = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with("members") && t.contains('[') {
            in_members = true;
            continue;
        }
        if in_members {
            if t.starts_with(']') {
                break;
            }
            if let Some(name) = t.split('"').nth(1) {
                dirs.push(root.join(name));
            }
        }
    }
    dirs
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for dir in member_dirs(root) {
        let krate = if dir == *root {
            "priograph".to_string()
        } else {
            rel(root, &dir)
        };
        let mut files = Vec::new();
        rs_files(&dir.join("src"), &mut files);
        // tests/benches/examples also carry rule-1 (SAFETY) coverage.
        let mut extra = Vec::new();
        for sub in ["tests", "benches", "examples"] {
            rs_files(&dir.join(sub), &mut extra);
        }
        if dir == *root {
            // The root package owns src/ only; member dirs are separate
            // packages and are visited on their own iteration.
            files.retain(|p| {
                !p.starts_with(root.join("crates")) && !p.starts_with(root.join("vendor"))
            });
            extra.retain(|p| {
                !p.starts_with(root.join("crates")) && !p.starts_with(root.join("vendor"))
            });
        }

        let mut crate_unsafe = 0usize;
        for path in files.iter().chain(extra.iter()) {
            let Ok(src) = std::fs::read_to_string(path) else {
                continue;
            };
            findings.extend(lints::check_safety_comments(&rel(root, path), &src));
            if files.contains(path) {
                crate_unsafe += lints::count_unsafe(&src);
            }
        }

        let root_file = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|f| dir.join(f))
            .find(|p| p.is_file());
        if let Some(root_file) = root_file {
            if let Ok(src) = std::fs::read_to_string(&root_file) {
                findings.extend(lints::check_crate_attrs(
                    &krate,
                    &rel(root, &root_file),
                    &src,
                    crate_unsafe,
                ));
            }
        }
    }

    for (dir, names) in [
        ("crates/server/src", SERVER_PANIC_FILES),
        ("crates/telemetry/src", TELEMETRY_PANIC_FILES),
    ] {
        for name in names {
            let path = root.join(dir).join(name);
            if let Ok(src) = std::fs::read_to_string(&path) {
                findings.extend(lints::check_server_panics(&rel(root, &path), &src));
            } else {
                findings.push(Finding {
                    file: format!("{dir}/{name}"),
                    line: 0,
                    msg: "request-path file missing (panic lint could not run)".to_string(),
                });
            }
        }
    }

    let code = std::fs::read_to_string(root.join("crates/server/src/protocol.rs"));
    let doc = std::fs::read_to_string(root.join("docs/PROTOCOL.md"));
    match (code, doc) {
        (Ok(code), Ok(doc)) => findings.extend(lints::check_protocol_sync(&code, &doc)),
        _ => findings.push(Finding {
            file: "docs/PROTOCOL.md".to_string(),
            line: 0,
            msg: "protocol.rs or PROTOCOL.md missing (sync lint could not run)".to_string(),
        }),
    }
    findings
}

#[cfg(test)]
mod repo_tests {
    use super::*;

    /// The committed tree must be lint-clean — this is the same check CI's
    /// `audit` job runs, surfaced in `cargo test` so a red tree fails fast.
    #[test]
    fn committed_tree_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root.canonicalize().unwrap());
        assert!(
            findings.is_empty(),
            "workspace lint violations:\n{}",
            findings
                .iter()
                .map(|f| format!("  {}:{}: {}", f.file, f.line, f.msg))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
