//! The lint rules. Every rule is a pure function over source text so the
//! red cases (a stripped SAFETY comment, a server-path panic, a doc/constant
//! mismatch) can be exercised directly in unit tests without touching the
//! working tree.

use crate::scan::{contains_word, scan, Line};

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file (or a synthetic label).
    pub file: String,
    /// 1-based line number, 0 when the finding is file- or crate-level.
    pub line: usize,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl Finding {
    fn new(file: &str, line: usize, msg: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            msg,
        }
    }
}

fn is_passive(line: &Line) -> bool {
    let code = line.code.trim();
    code.is_empty() || code.starts_with("#[") || code.starts_with("#![")
}

fn run_has_safety(lines: &[Line], mut idx: usize) -> bool {
    // Walk the contiguous run of comment/attribute/blank lines immediately
    // above `idx`, looking for a SAFETY marker. A line that is itself the
    // unfinished head of the statement (`let x =`, an open call, …) does not
    // end the run: `unsafe` may sit on a continuation line below the
    // statement the comment annotates.
    while idx > 0 {
        idx -= 1;
        let line = &lines[idx];
        let code = line.code.trim_end();
        let continuation = matches!(code.chars().last(), Some('=' | '(' | ',' | '+' | '|'));
        if !is_passive(line) && !continuation {
            return false;
        }
        if line.comment.contains("SAFETY:") || line.comment.contains("# Safety") {
            return true;
        }
    }
    false
}

/// Rule 1: every `unsafe` site must carry a `// SAFETY:` comment (same line,
/// or in the contiguous comment/attribute run immediately above). A
/// `/// # Safety` doc section on an `unsafe fn`/`unsafe trait` counts.
/// Consecutive one-line `unsafe impl` items (the idiomatic Send/Sync pair)
/// may share one comment above the first of the group.
pub fn check_safety_comments(file: &str, src: &str) -> Vec<Finding> {
    let lines = scan(src);
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !contains_word(&line.code, "unsafe") {
            continue;
        }
        if line.comment.contains("SAFETY:") {
            continue;
        }
        // Group consecutive `unsafe impl` one-liners: hoist the check to the
        // first line of the group.
        let mut top = i;
        if line.code.trim_start().starts_with("unsafe impl") {
            while top > 0 && lines[top - 1].code.trim_start().starts_with("unsafe impl") {
                top -= 1;
            }
        }
        if lines[top].comment.contains("SAFETY:") || run_has_safety(&lines, top) {
            continue;
        }
        findings.push(Finding::new(
            file,
            i + 1,
            "`unsafe` without a `// SAFETY:` comment (same line or in the \
             comment block directly above)"
                .to_string(),
        ));
    }
    findings
}

/// Counts `unsafe` keyword occurrences in code (not comments/strings).
pub fn count_unsafe(src: &str) -> usize {
    scan(src)
        .iter()
        .filter(|l| contains_word(&l.code, "unsafe"))
        .count()
}

/// Rule 2: crates with zero unsafe must `#![forbid(unsafe_code)]`;
/// unsafe-bearing crates must `#![deny(unsafe_op_in_unsafe_fn)]`.
/// `root_src` is the crate-root file; `crate_unsafe` the unsafe-line count
/// across the whole crate's `src/` tree.
pub fn check_crate_attrs(
    krate: &str,
    root_file: &str,
    root_src: &str,
    crate_unsafe: usize,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code: String = scan(root_src)
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let has_forbid = code.contains("#![forbid(unsafe_code)]");
    let has_deny = code.contains("#![deny(unsafe_op_in_unsafe_fn)]");
    if crate_unsafe == 0 {
        if !has_forbid {
            findings.push(Finding::new(
                root_file,
                0,
                format!("crate `{krate}` has no unsafe code but does not declare #![forbid(unsafe_code)]"),
            ));
        }
    } else {
        if !has_deny {
            findings.push(Finding::new(
                root_file,
                0,
                format!(
                    "crate `{krate}` has {crate_unsafe} unsafe site(s) but does not declare \
                     #![deny(unsafe_op_in_unsafe_fn)]"
                ),
            ));
        }
        if has_forbid {
            findings.push(Finding::new(
                root_file,
                0,
                format!(
                    "crate `{krate}` declares #![forbid(unsafe_code)] yet contains unsafe code"
                ),
            ));
        }
    }
    findings
}

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".unwrap_err(",
    ".expect(",
    ".expect_err(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn allow_panic_ok(comment: &str) -> bool {
    // `// lint: allow-panic <reason>` — the reason is mandatory.
    comment.find("lint: allow-panic").is_some_and(|pos| {
        let rest = &comment[pos + "lint: allow-panic".len()..];
        rest.chars().filter(|c| c.is_alphanumeric()).count() >= 3
    })
}

/// Rule 3: no panicking constructs on the server request path. Allowlist a
/// site with `// lint: allow-panic <reason>` on the same line or the line
/// above. `#[cfg(test)]` items are skipped.
pub fn check_server_panics(file: &str, src: &str) -> Vec<Finding> {
    let lines = scan(src);
    let mut findings = Vec::new();
    let mut skip_depth: Option<usize> = None; // brace depth when a cfg(test) item closes
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        if skip_depth.is_none() {
            if code.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            }
            if pending_cfg_test && code.contains('{') {
                // The cfg(test) item's body opens here; skip until the brace
                // depth returns to its pre-item level.
                skip_depth = Some(depth);
                pending_cfg_test = false;
            } else if skip_depth.is_none() && !pending_cfg_test {
                for pat in PANIC_PATTERNS {
                    if code.contains(pat) {
                        let allowed = allow_panic_ok(&line.comment)
                            || (i > 0 && allow_panic_ok(&lines[i - 1].comment));
                        if !allowed {
                            findings.push(Finding::new(
                                file,
                                i + 1,
                                format!(
                                    "`{pat}` on the server request path (allowlist with \
                                     `// lint: allow-panic <reason>` if infallible)"
                                ),
                            ));
                        }
                        break;
                    }
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if skip_depth == Some(depth) {
                        skip_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

/// Evaluates the integer constant expressions the protocol module uses:
/// plain literals, `a << b`, and `a + b + …`.
fn eval_const(expr: &str) -> Option<u64> {
    let expr = expr.trim();
    if let Some((a, b)) = expr.split_once("<<") {
        return Some(eval_const(a)? << eval_const(b)?);
    }
    if expr.contains('+') {
        let mut sum = 0;
        for part in expr.split('+') {
            sum += eval_const(part)?;
        }
        return Some(sum);
    }
    expr.replace('_', "").parse().ok()
}

fn find_const(code: &str, name: &str) -> Option<u64> {
    let pos = code.find(&format!("const {name}:"))?;
    let rest = &code[pos..];
    let eq = rest.find('=')?;
    let semi = rest.find(';')?;
    eval_const(&rest[eq + 1..semi])
}

/// Extracts `<int> =>` match-arm tags from the body of `fn_name` inside
/// `impl_name`'s impl block (comment/string-stripped text).
fn decode_tags(code: &str, impl_name: &str, fn_name: &str) -> Option<Vec<u64>> {
    let impl_pos = code.find(&format!("impl {impl_name} "))?;
    let fn_pos = code[impl_pos..].find(&format!("fn {fn_name}("))? + impl_pos;
    let open = code[fn_pos..].find('{')? + fn_pos;
    let mut depth = 0usize;
    let mut end = open;
    for (off, c) in code[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + off;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &code[open..end];
    let mut tags = Vec::new();
    for line in body.lines() {
        let t = line.trim_start();
        if let Some(arrow) = t.find("=>") {
            if let Ok(n) = t[..arrow].trim().parse::<u64>() {
                tags.push(n);
            }
        }
    }
    Some(tags)
}

/// `ErrorKind` variant-to-wire-byte pairs from `to_u8`.
type KindBytes = Vec<(String, u64)>;
/// `ErrorKind` variant-to-display-name pairs from the `Display` impl.
type KindNames = Vec<(String, String)>;

/// Collects `ErrorKind::<Variant> => <int>` (from `to_u8`) and
/// `ErrorKind::<Variant> => "<name>"` (from the Display impl) pairs.
fn error_kind_tables(raw: &str) -> (KindBytes, KindNames) {
    let mut nums = Vec::new();
    let mut strs = Vec::new();
    for line in raw.lines() {
        let t = line.trim();
        // Guard clauses like `e.kind() == std::io::ErrorKind::Interrupted`
        // fail the `=> <int or "str">` shape below and are ignored.
        let Some(rest) = t.strip_prefix("ErrorKind::") else {
            continue;
        };
        let Some((variant, rhs)) = rest.split_once("=>") else {
            continue;
        };
        let variant = variant.trim().to_string();
        let rhs = rhs.trim().trim_end_matches(',');
        if let Ok(n) = rhs.parse::<u64>() {
            nums.push((variant, n));
        } else if rhs.len() >= 2 && rhs.starts_with('"') && rhs.ends_with('"') {
            strs.push((variant, rhs[1..rhs.len() - 1].to_string()));
        }
    }
    (nums, strs)
}

/// Parsed view of the normative tables in `docs/PROTOCOL.md`.
#[derive(Debug, Default)]
struct DocSpec {
    version: Option<u64>,
    frame_len: Option<u64>,
    name_len: Option<u64>,
    path_len: Option<u64>,
    query_len: Option<u64>,
    plan_len: Option<u64>,
    request_tags: Vec<u64>,
    response_tags: Vec<u64>,
    errors: Vec<(u64, String)>,
}

fn mib(expr: &str) -> Option<u64> {
    // "64 MiB" → bytes.
    let n: u64 = expr.trim().strip_suffix("MiB")?.trim().parse().ok()?;
    Some(n * 1024 * 1024)
}

fn backticked(line: &str) -> Option<&str> {
    let start = line.find('`')?;
    let end = line[start + 1..].find('`')? + start + 1;
    Some(&line[start + 1..end])
}

fn parse_doc(doc: &str) -> DocSpec {
    let mut spec = DocSpec::default();
    let mut section = 0u32;
    for line in doc.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("## ") {
            section = rest
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap_or(0);
        }
        // `version` is **3** for this document.
        if t.contains("`version` is **") {
            if let Some(pos) = t.find("**") {
                let rest = &t[pos + 2..];
                if let Some(end) = rest.find("**") {
                    spec.version = rest[..end].trim().parse().ok();
                }
            }
        }
        // MAX_FRAME_LEN` = 64 MiB** (`1 << 26`)
        if t.contains("MAX_FRAME_LEN") {
            if let Some(open) = t.find("(`") {
                if let Some(close) = t[open + 2..].find('`') {
                    spec.frame_len = eval_const(&t[open + 2..open + 2 + close]);
                }
            }
        }
        // ### 3.1 Query (22 bytes)
        if t.starts_with("###") && t.contains("Query (") {
            if let Some(open) = t.find('(') {
                if let Some(close) = t[open..].find(" bytes)") {
                    spec.query_len = t[open + 1..open + close].trim().parse().ok();
                }
            }
        }
        // A `WirePlan` is 15 bytes:
        if t.contains("`WirePlan` is ") {
            if let Some(pos) = t.find(" is ") {
                let rest = &t[pos + 4..];
                if let Some(end) = rest.find(" bytes") {
                    spec.plan_len = rest[..end].trim().parse().ok();
                }
            }
        }
        // §7 limits rows.
        if t.starts_with('|') && t.contains('≤') {
            let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() >= 2 {
                let val = cells[1].trim_start_matches('≤').trim();
                match cells[0] {
                    "frame payload" => {
                        if spec.frame_len.is_none() {
                            spec.frame_len = mib(val);
                        } else if mib(val) != spec.frame_len {
                            // Force a mismatch finding by poisoning the value.
                            spec.frame_len = Some(u64::MAX);
                        }
                    }
                    "graph name" => {
                        spec.name_len = val
                            .strip_suffix("bytes")
                            .and_then(|v| v.trim().parse().ok())
                    }
                    "snapshot path" => {
                        spec.path_len = val
                            .strip_suffix("bytes")
                            .and_then(|v| v.trim().parse().ok())
                    }
                    _ => {}
                }
            }
        }
        // Tag/error tables: `| <int> | `Name` | … |` in §3 / §4 / §5.
        if t.starts_with('|') && matches!(section, 3..=5) {
            let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() >= 2 {
                if let Ok(tag) = cells[0].parse::<u64>() {
                    match section {
                        3 => spec.request_tags.push(tag),
                        4 => spec.response_tags.push(tag),
                        5 => {
                            if let Some(name) = backticked(cells[1]) {
                                spec.errors.push((tag, name.to_string()));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    spec
}

/// Rule 4: cross-check `protocol.rs` against the normative tables in
/// `docs/PROTOCOL.md`. `code_src` is the raw module source; `doc_src` the
/// raw markdown.
pub fn check_protocol_sync(code_src: &str, doc_src: &str) -> Vec<Finding> {
    const CODE: &str = "crates/server/src/protocol.rs";
    const DOC: &str = "docs/PROTOCOL.md";
    let mut findings = Vec::new();
    fn mismatch(findings: &mut Vec<Finding>, what: &str, code_val: String, doc_val: String) {
        findings.push(Finding::new(
            "crates/server/src/protocol.rs",
            0,
            format!("{what}: code says {code_val}, docs/PROTOCOL.md says {doc_val}"),
        ));
    }

    let stripped: String = scan(code_src)
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let doc = parse_doc(doc_src);

    let consts: &[(&str, Option<u64>)] = &[
        ("PROTOCOL_VERSION", doc.version),
        ("MAX_FRAME_LEN", doc.frame_len),
        ("MAX_NAME_LEN", doc.name_len),
        ("MAX_PATH_LEN", doc.path_len),
        ("QUERY_WIRE_LEN", doc.query_len),
        ("WIRE_PLAN_LEN", doc.plan_len),
    ];
    for (name, doc_val) in consts {
        let code_val = find_const(&stripped, name);
        match (code_val, doc_val) {
            (Some(c), Some(d)) if c == *d => {}
            (Some(c), Some(d)) => mismatch(&mut findings, name, c.to_string(), d.to_string()),
            (None, _) => findings.push(Finding::new(
                CODE,
                0,
                format!("could not locate const `{name}`"),
            )),
            (_, None) => findings.push(Finding::new(
                DOC,
                0,
                format!("could not parse the normative value for `{name}`"),
            )),
        }
    }

    // Request / Response tag sets.
    for (impl_name, fn_name, doc_tags) in [
        ("Request", "decode", &doc.request_tags),
        ("Response", "decode_body", &doc.response_tags),
    ] {
        match decode_tags(&stripped, impl_name, fn_name) {
            Some(mut code_tags) => {
                let mut doc_tags = doc_tags.clone();
                code_tags.sort_unstable();
                doc_tags.sort_unstable();
                if code_tags != doc_tags {
                    mismatch(
                        &mut findings,
                        &format!("{impl_name} wire tags"),
                        format!("{code_tags:?}"),
                        format!("{doc_tags:?}"),
                    );
                }
            }
            None => findings.push(Finding::new(
                CODE,
                0,
                format!("could not locate `impl {impl_name}`'s `{fn_name}` match arms"),
            )),
        }
    }

    // Error kinds: byte → display-name, via the shared variant identifier.
    let (nums, strs) = error_kind_tables(code_src);
    if nums.is_empty() || strs.is_empty() {
        findings.push(Finding::new(
            CODE,
            0,
            "could not locate the ErrorKind to_u8/Display tables".to_string(),
        ));
    } else {
        let mut code_errors: Vec<(u64, String)> = Vec::new();
        for (variant, byte) in &nums {
            match strs.iter().find(|(v, _)| v == variant) {
                Some((_, name)) => code_errors.push((*byte, name.clone())),
                None => findings.push(Finding::new(
                    CODE,
                    0,
                    format!("ErrorKind::{variant} has a wire byte but no Display arm"),
                )),
            }
        }
        let mut doc_errors = doc.errors.clone();
        code_errors.sort();
        doc_errors.sort();
        if code_errors != doc_errors {
            mismatch(
                &mut findings,
                "error-kind table",
                format!("{code_errors:?}"),
                format!("{doc_errors:?}"),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANNOTATED: &str = "\
// SAFETY: len is checked above.
unsafe { ptr.add(1) };
let y = unsafe { get() }; // SAFETY: same line works too
";

    #[test]
    fn safety_green_on_annotated() {
        assert!(check_safety_comments("t.rs", ANNOTATED).is_empty());
    }

    #[test]
    fn safety_red_on_stripped_comment() {
        // The red case the acceptance criteria demand: remove the SAFETY
        // comment and the lint must fire.
        let stripped = ANNOTATED.replace("// SAFETY: len is checked above.\n", "");
        let findings = check_safety_comments("t.rs", &stripped);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn safety_accepts_doc_section_and_attr_run() {
        let src = "\
/// Does things.
///
/// # Safety
///
/// Caller must uphold X.
#[inline]
pub unsafe fn f() {}
";
        assert!(check_safety_comments("t.rs", src).is_empty());
    }

    #[test]
    fn safety_groups_send_sync_pairs() {
        let src = "\
// SAFETY: T: Send and access is disjoint per worker.
unsafe impl<T: Send> Send for W<T> {}
unsafe impl<T: Send> Sync for W<T> {}
";
        assert!(check_safety_comments("t.rs", src).is_empty());
        let src_red = src.replace(
            "// SAFETY: T: Send and access is disjoint per worker.\n",
            "",
        );
        assert_eq!(check_safety_comments("t.rs", &src_red).len(), 2);
    }

    #[test]
    fn safety_ignores_strings_and_comments() {
        let src = "let s = \"unsafe\"; // unsafe in a comment is fine\n";
        assert!(check_safety_comments("t.rs", src).is_empty());
        assert_eq!(count_unsafe(src), 0);
    }

    #[test]
    fn crate_attrs_rules() {
        // Safe crate without forbid → red.
        assert_eq!(
            check_crate_attrs("k", "lib.rs", "#![warn(missing_docs)]", 0).len(),
            1
        );
        // Safe crate with forbid → green.
        assert!(check_crate_attrs("k", "lib.rs", "#![forbid(unsafe_code)]", 0).is_empty());
        // Unsafe crate without deny → red; with both forbid and unsafe → red.
        assert_eq!(check_crate_attrs("k", "lib.rs", "", 3).len(), 1);
        assert_eq!(
            check_crate_attrs("k", "lib.rs", "#![forbid(unsafe_code)]", 3).len(),
            2
        );
        // Unsafe crate with deny → green.
        assert!(check_crate_attrs("k", "lib.rs", "#![deny(unsafe_op_in_unsafe_fn)]", 3).is_empty());
    }

    #[test]
    fn server_panic_red_and_allowlist() {
        let red = "fn handle() { x.unwrap(); }\n";
        let findings = check_server_panics("server.rs", red);
        assert_eq!(findings.len(), 1, "{findings:?}");

        let allowed = "\
// lint: allow-panic index is bounds-checked above
fn handle() { x.unwrap(); }
let y = v.pop().unwrap(); // lint: allow-panic vec is non-empty by construction
";
        assert!(check_server_panics("server.rs", allowed).is_empty());

        // A bare marker with no reason does not allowlist.
        let no_reason = "x.unwrap(); // lint: allow-panic\n";
        assert_eq!(check_server_panics("server.rs", no_reason).len(), 1);
    }

    #[test]
    fn server_panic_skips_cfg_test() {
        let src = "\
fn ok() -> u8 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(super::ok(), 1); Some(1).unwrap(); panic!(\"boom\"); }
}
";
        assert!(check_server_panics("server.rs", src).is_empty());
    }

    const MINI_CODE: &str = r#"
pub const PROTOCOL_VERSION: u8 = 3;
pub const MAX_FRAME_LEN: usize = 1 << 26;
pub const MAX_NAME_LEN: usize = 255;
pub const MAX_PATH_LEN: usize = 4096;
const QUERY_WIRE_LEN: usize = 1 + 4 + 4 + 4 + 1 + 8;
const WIRE_PLAN_LEN: usize = 1 + 1 + 8 + 1 + 4;
impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::Internal => 0,
            ErrorKind::BadRequest => 1,
        }
    }
}
impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Internal => "internal",
            ErrorKind::BadRequest => "bad-request",
        })
    }
}
impl Request {
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Request::Query,
            1 => Request::Batch,
            other => return Err(malformed(other)),
        }
    }
}
impl Response {
    fn decode_body(r: &mut Cursor<'_>, depth: u8) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Response::Distance),
            1 => Ok(Response::DistVec),
            other => Err(malformed(other)),
        }
    }
}
"#;

    const MINI_DOC: &str = "\
# The wire protocol (version 3)
## 2. Payload envelope and versioning
* `version` is **3** for this document.
* `length` MUST NOT exceed **`MAX_FRAME_LEN` = 64 MiB** (`1 << 26`).
## 3. Requests
| tag | request | body |
|---|---|---|
| 0 | `Query` | one Query |
| 1 | `Batch` | vector of Query |
### 3.1 Query (22 bytes)
## 4. Responses
| 0 | `Distance` | stuff |
| 1 | `DistVec` | stuff |
A `WirePlan` is 15 bytes:
## 5. Typed errors
| 0 | `internal` | unclassified |
| 1 | `bad-request` | invalid |
## 7. Limits (summary)
| frame payload | \u{2264} 64 MiB |
| graph name | \u{2264} 255 bytes |
| snapshot path | \u{2264} 4096 bytes |
";

    #[test]
    fn protocol_sync_green_on_matching_pair() {
        let findings = check_protocol_sync(MINI_CODE, MINI_DOC);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn protocol_sync_red_on_version_drift() {
        let doc = MINI_DOC
            .replace("is **3**", "is **4**")
            .replace("(version 3)", "(version 4)");
        let findings = check_protocol_sync(MINI_CODE, &doc);
        assert!(
            findings.iter().any(|f| f.msg.contains("PROTOCOL_VERSION")),
            "{findings:?}"
        );
    }

    #[test]
    fn protocol_sync_red_on_frame_cap_drift() {
        let code = MINI_CODE.replace("1 << 26", "1 << 25");
        let findings = check_protocol_sync(&code, MINI_DOC);
        assert!(
            findings.iter().any(|f| f.msg.contains("MAX_FRAME_LEN")),
            "{findings:?}"
        );
    }

    #[test]
    fn protocol_sync_red_on_missing_error_kind() {
        let doc = MINI_DOC.replace("| 1 | `bad-request` | invalid |\n", "");
        let findings = check_protocol_sync(MINI_CODE, &doc);
        assert!(
            findings.iter().any(|f| f.msg.contains("error-kind table")),
            "{findings:?}"
        );
    }

    #[test]
    fn protocol_sync_red_on_new_wire_tag() {
        let code = MINI_CODE.replace(
            "1 => Request::Batch,",
            "1 => Request::Batch,\n            2 => Request::Stats,",
        );
        let findings = check_protocol_sync(&code, MINI_DOC);
        assert!(
            findings.iter().any(|f| f.msg.contains("Request wire tags")),
            "{findings:?}"
        );
    }
}
